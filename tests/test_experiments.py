"""Smoke and fidelity tests for the registered paper experiments.

Full-size experiment runs live in ``benchmarks/``; here every
experiment executes at a reduced scale to validate structure, and the
cheap ones are checked against the paper's numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, render, run_experiment
from repro.experiments.figures import (
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig9,
    run_fig10,
    run_fig11,
)
from repro.experiments.tables import run_table1, run_table2


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {f"fig{i}" for i in range(3, 12)} | {
            "fig1-fig2",
            "table1",
            "table2",
            "table3",
            "table4",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestFig1Fig2:
    def test_exact_match(self):
        result = run_experiment("fig1-fig2")
        for group in result.groups:
            for row in group.rows:
                assert row.measured == row.paper, f"{group.label}/{row.label}"


class TestFig3Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(scaled_tuples=40_000)

    def test_broadcast_matches_paper(self, result):
        for group in result.groups:
            for label in ("BJ-R", "BJ-S"):
                row = result.row(group.label, label)
                assert row.measured == pytest.approx(row.paper, rel=0.02)

    def test_track_join_beats_hash_join_with_wide_payloads(self, result):
        group = "R width = 20 B, S width = 60 B"
        assert result.measured(group, "2TJ-R") < result.measured(group, "HJ")
        assert result.measured(group, "4TJ") < result.measured(group, "HJ")

    def test_equal_widths_narrow_margin(self, result):
        """At 60/60 the width rule 2*wk <= max(w) still barely holds."""
        group = "R width = 60 B, S width = 60 B"
        assert result.measured(group, "4TJ") < result.measured(group, "HJ")

    def test_two_phase_directions_ordered_by_width(self, result):
        group = "R width = 20 B, S width = 60 B"
        assert result.measured(group, "2TJ-R") < result.measured(group, "2TJ-S")


class TestLocalityFigures:
    def test_fig4_collocation_gradient(self):
        result = run_fig4(scaled_keys=20_000)
        tj = [result.measured(g.label, "4TJ") for g in result.groups]
        # Traffic grows as collocation degrades: 5,0,0 < 2,2,1 < 1,1,1,1,1.
        assert tj[0] < tj[1] < tj[2]

    def test_fig5_vs_fig6_inter_collocation_helps(self):
        intra = run_fig5(scaled_keys=8_000)
        inter = run_fig6(scaled_keys=8_000)
        for pattern_index in range(3):
            g_intra = intra.groups[pattern_index]
            g_inter = inter.groups[pattern_index]
            assert inter.measured(g_inter.label, "4TJ") <= intra.measured(
                g_intra.label, "4TJ"
            )

    def test_fig6_full_collocation_eliminates_payloads(self):
        result = run_fig6(scaled_keys=8_000)
        row = result.row("Pattern: 5,0,...", "4TJ")
        assert row.breakdown["R Tuples"] == 0.0
        assert row.breakdown["S Tuples"] == 0.0


class TestWorkloadFigures:
    def test_fig9_reductions_close_to_paper(self):
        result = run_fig9(scale_denominator=2048)
        for group in result.groups:
            row = result.row(group.label, "traffic reduction (%)")
            assert row.measured == pytest.approx(row.paper, abs=8.0), group.label

    def test_fig10_track_join_wins_with_locality(self):
        result = run_fig10(scale_denominator=512)
        group = result.groups[0].label
        assert result.measured(group, "4TJ") < 0.5 * result.measured(group, "HJ")

    def test_fig11_shuffled_shape(self):
        """2TJ-S prohibitive, 2TJ-R ~3x HJ, 4TJ below HJ (Figure 11)."""
        result = run_fig11(scale_denominator=512)
        group = result.groups[0].label
        hj = result.measured(group, "HJ")
        assert result.measured(group, "2TJ-S") > 3 * hj
        assert 1.5 * hj < result.measured(group, "2TJ-R") < 4 * hj
        assert result.measured(group, "4TJ") < hj


class TestTables:
    def test_table1_fidelity(self):
        result = run_table1(scale_denominator=1024)
        for group in result.groups:
            for row in group.rows:
                assert row.measured == pytest.approx(row.paper, rel=0.05), (
                    f"{group.label}/{row.label}"
                )

    def test_table2_within_factor_two(self):
        result = run_table2(scale_x=2048, scale_y=512)
        for group in result.groups:
            if "projection" in group.label:
                continue
            for row in group.rows:
                assert row.ratio is not None
                assert 0.5 < row.ratio < 2.0, f"{group.label}/{row.label}: {row.ratio}"

    def test_render_produces_report(self):
        result = run_table1(scale_denominator=2048)
        text = render(result)
        assert "table1" in text
        assert "measured" in text and "paper" in text


class TestMarkdownGeneration:
    def test_generate_reports_small(self):
        from repro.experiments.markdown import generate_reports

        text = generate_reports(
            {
                "fig3": {"scaled_tuples": 20_000},
                "fig4": {"scaled_keys": 5_000},
                "fig5": {"scaled_keys": 4_000},
                "fig6": {"scaled_keys": 4_000},
                "fig7": {"scale_denominator": 8192},
                "fig8": {"scale_denominator": 8192},
                "fig9": {"scale_denominator": 8192},
                "fig10": {"scale_denominator": 2048},
                "fig11": {"scale_denominator": 2048},
                "table1": {"scale_denominator": 4096},
                "table2": {"scale_x": 8192, "scale_y": 2048},
                "table3": {"scale_x": 8192, "scale_y": 2048},
                "table4": {"scale_x": 8192, "scale_y": 2048},
            }
        )
        for experiment_id in ("fig3", "fig9", "table2", "table4"):
            assert f"== {experiment_id}:" in text

    def test_document_params_cover_registry(self):
        from repro.experiments import EXPERIMENTS
        from repro.experiments.markdown import DOCUMENT_PARAMS

        assert set(DOCUMENT_PARAMS) <= set(EXPERIMENTS)
