"""Pipelined exchange mode: fused phases must change nothing but time.

Depth-1 (strict) execution is the byte-exact reference the golden suite
pins.  With ``pipeline_depth >= 2`` consecutive exchange phases fuse
under one barrier, which may renumber message sequence ids and reorder
profile steps — but the traffic ledger (per class, per link, totals,
message counts), the per-category inbox order, and the join outputs
must be identical at every worker count.  Fault plans force strict
barriers regardless of the configured depth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, GraceHashJoin, JoinSpec, TrackJoin2, TrackJoin4
from repro.cluster.cluster import default_pipeline_depth
from repro.errors import ParallelError, ValidationError
from repro.faults import FaultPlan
from repro.parallel import ProcessExecutor, run_fused_phases
from repro.timing.profile import ExecutionProfile

from conftest import assert_same_output, make_tables

ALGORITHMS = [TrackJoin4, TrackJoin2, GraceHashJoin]


def run_join(algorithm, workers, depth, num_nodes=4, fault_plan=None):
    cluster = Cluster(
        num_nodes, workers=workers, pipeline_depth=depth, fault_plan=fault_plan
    )
    rng = np.random.default_rng(13)
    table_r, table_s = make_tables(
        cluster, rng.integers(0, 700, 2500), rng.integers(300, 1000, 3000)
    )
    return algorithm().run(cluster, table_r, table_s, JoinSpec(materialize=True))


def ledger_signature(traffic):
    return {
        "by_class": sorted((c.name, b) for c, b in traffic.by_class.items()),
        "by_link": sorted(traffic.by_link.items()),
        "total": traffic.total_bytes,
        "messages": traffic.message_count,
        "local": traffic.local_bytes,
    }


class TestPipelinedIdentity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("workers", [1, 4, 8])
    def test_ledger_and_output_identical_to_strict(self, algorithm, workers):
        strict = run_join(algorithm, workers=1, depth=1)
        pipelined = run_join(algorithm, workers=workers, depth=2)
        assert ledger_signature(strict.traffic) == ledger_signature(
            pipelined.traffic
        )
        assert_same_output(strict, pipelined)

    @pytest.mark.parametrize("depth", [2, 3, 8])
    def test_deeper_windows_identical(self, depth):
        strict = run_join(TrackJoin4, workers=1, depth=1)
        pipelined = run_join(TrackJoin4, workers=4, depth=depth)
        assert ledger_signature(strict.traffic) == ledger_signature(
            pipelined.traffic
        )
        assert_same_output(strict, pipelined)

    def test_profile_step_totals_identical(self):
        strict = run_join(TrackJoin4, workers=1, depth=1)
        pipelined = run_join(TrackJoin4, workers=4, depth=2)
        totals = lambda profile: sorted(  # noqa: E731
            (s.name, s.kind, tuple(s.per_node_bytes)) for s in profile.steps
        )
        assert totals(strict.profile) == totals(pipelined.profile)

    def test_fused_groups_actually_formed(self):
        result = run_join(TrackJoin4, workers=2, depth=2)
        assert any(t["stages"] > 1 for t in result.profile.phase_timings)
        strict = run_join(TrackJoin4, workers=2, depth=1)
        assert all(t["stages"] == 1 for t in strict.profile.phase_timings)


class TestFaultFallback:
    def test_fault_plan_forces_strict_barriers(self):
        plan = FaultPlan(seed=5, drop=0.05, max_retries=8)
        cluster = Cluster(4, pipeline_depth=4, fault_plan=plan)
        assert cluster.pipeline_depth == 4
        assert not cluster.pipeline_active()

    def test_faulted_pipelined_run_matches_faultless_goodput(self):
        plan = FaultPlan(seed=5, drop=0.05, max_retries=8)
        clean = run_join(TrackJoin4, workers=2, depth=4)
        faulted = run_join(TrackJoin4, workers=2, depth=4, fault_plan=plan)
        assert ledger_signature(clean.traffic) == ledger_signature(
            faulted.traffic
        )
        assert_same_output(clean, faulted)
        assert faulted.traffic.retransmit_bytes > 0

    def test_run_fused_phases_rejects_faulted_multi_stage(self):
        plan = FaultPlan(seed=1, drop=0.01, max_retries=8)
        cluster = Cluster(2, fault_plan=plan)
        noop = lambda node: None  # noqa: E731
        with pytest.raises(ParallelError):
            run_fused_phases(cluster, [(noop, None, None), (noop, None, None)])


class TestWindowSemantics:
    def test_run_phase_returns_none_inside_window(self):
        cluster = Cluster(2, pipeline_depth=2)
        seen = []
        with cluster.pipelined_phases():
            assert cluster.run_phase(lambda node: seen.append(node)) is None
            assert not seen  # deferred, not yet executed
        assert sorted(seen) == [0, 1]

    def test_window_noop_at_depth_one(self):
        cluster = Cluster(2, pipeline_depth=1)
        with cluster.pipelined_phases():
            results = cluster.run_phase(lambda node: node)
        assert results == [0, 1]

    def test_exception_discards_window(self):
        cluster = Cluster(2, pipeline_depth=2)
        with pytest.raises(RuntimeError):
            with cluster.pipelined_phases():
                cluster.run_phase(lambda node: node)
                raise RuntimeError("boom")
        # The deferred phase was discarded; the cluster is reusable.
        assert cluster.run_phase(lambda node: node) == [0, 1]

    def test_depth_validation(self):
        with pytest.raises(ValidationError):
            Cluster(2, pipeline_depth=0)
        with pytest.raises(ValidationError):
            Cluster(2).set_pipeline_depth("2")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE", "3")
        assert default_pipeline_depth() == 3
        monkeypatch.setenv("REPRO_PIPELINE", "bogus")
        with pytest.warns(RuntimeWarning):
            assert default_pipeline_depth() == 1
        monkeypatch.setenv("REPRO_PIPELINE", "0")
        with pytest.warns(RuntimeWarning):
            assert default_pipeline_depth() == 1
        monkeypatch.delenv("REPRO_PIPELINE")
        assert default_pipeline_depth() == 1


class TestPhaseTimings:
    def test_breakdown_fields_recorded(self):
        result = run_join(TrackJoin4, workers=2, depth=2)
        timings = result.profile.phase_timings
        assert timings
        for timing in timings:
            for field in (
                "tasks",
                "stages",
                "workers",
                "dispatch_seconds",
                "kernel_seconds",
                "barrier_wait_seconds",
                "commit_seconds",
                "phase_seconds",
            ):
                assert field in timing
                assert timing[field] >= 0
        totals = result.profile.timing_totals()
        assert totals["phases"] == len(timings)
        assert totals["kernel_seconds"] == pytest.approx(
            sum(t["kernel_seconds"] for t in timings)
        )

    def test_timings_not_merged_across_profiles(self):
        profile = ExecutionProfile(2)
        other = ExecutionProfile(2)
        other.record_phase_timing({"kernel_seconds": 1.0})
        profile.merge(other)
        assert profile.phase_timings == []


class TestQueryPipelineKnob:
    def _tables(self, cluster):
        rng = np.random.default_rng(3)
        return make_tables(
            cluster, rng.integers(0, 400, 2000), rng.integers(0, 400, 2000)
        )

    def test_physical_plan_depth_override_and_restore(self):
        from repro.query import Join, Scan, compile_plan

        cluster = Cluster(4, workers=2)
        table_r, table_s = self._tables(cluster)
        plan = compile_plan(Join(Scan(table_r), Scan(table_s), algorithm="4TJ"))
        strict = plan.run(cluster, JoinSpec(materialize=True))
        assert cluster.pipeline_depth == 1
        pipelined = plan.run(
            cluster, JoinSpec(materialize=True), pipeline_depth=2
        )
        assert cluster.pipeline_depth == 1  # restored
        assert strict.output_rows == pipelined.output_rows
        assert strict.network_bytes == pipelined.network_bytes


class TestProcessExecutorBatching:
    def test_batched_map_preserves_item_order(self):
        executor = ProcessExecutor(workers=2)
        try:
            assert executor.map(_square, range(23)) == [i * i for i in range(23)]
        finally:
            executor.close()

    def test_explicit_batch_size(self):
        executor = ProcessExecutor(workers=2, batch_size=3)
        try:
            assert executor._batches(list(range(7))) == [[0, 1, 2], [3, 4, 5], [6]]
            assert executor.map(_square, range(7)) == [i * i for i in range(7)]
        finally:
            executor.close()

    def test_default_batches_one_per_worker(self):
        executor = ProcessExecutor(workers=4)
        assert executor._batches(list(range(10))) == [
            [0, 1, 2],
            [3, 4, 5],
            [6, 7, 8],
            [9],
        ]
        assert executor._batches([]) == []


def _square(x):
    return x * x
