"""Tests for the vectorized hash table and hash-based local join."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.joins.local import join_indices
from repro.joins.local_hash import HashTable, hash_join_indices


class TestHashTable:
    def test_build_and_probe_unique(self):
        keys = np.array([10, 20, 30, 40])
        table = HashTable(keys)
        first = table.probe_first(np.array([30, 10, 99]))
        assert first[0] == 2 and first[1] == 0 and first[2] == -1

    def test_duplicates_chain_completely(self):
        keys = np.array([5, 5, 5, 7])
        table = HashTable(keys)
        first = int(table.probe_first(np.array([5]))[0])
        assert sorted(table.matches_of(first)) == [0, 1, 2]

    def test_empty_build(self):
        table = HashTable(np.array([], dtype=np.int64))
        assert (table.probe_first(np.array([1, 2])) == -1).all()

    def test_capacity_power_of_two(self):
        table = HashTable(np.arange(100))
        assert table.capacity & (table.capacity - 1) == 0
        assert table.capacity >= 200  # load factor 0.5

    def test_invalid_load_factor(self):
        with pytest.raises(ValueError):
            HashTable(np.array([1]), load_factor=1.5)

    def test_adversarial_same_slot_keys(self):
        """Many distinct keys forced through collisions still resolve."""
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**40, 5000)
        table = HashTable(keys, load_factor=0.9)  # high collision pressure
        first = table.probe_first(keys)
        assert (first != -1).all()
        for probe in range(0, 5000, 500):
            chain = table.matches_of(int(first[probe]))
            expected = np.flatnonzero(keys == keys[probe]).tolist()
            assert sorted(chain) == expected


class TestHashJoinIndices:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 15), max_size=60),
        st.lists(st.integers(0, 15), max_size=60),
    )
    def test_matches_sort_merge_kernel(self, left_raw, right_raw):
        left = np.array(left_raw, dtype=np.int64)
        right = np.array(right_raw, dtype=np.int64)
        li_h, ri_h = hash_join_indices(left, right)
        li_s, ri_s = join_indices(left, right)
        assert sorted(zip(li_h.tolist(), ri_h.tolist())) == sorted(
            zip(li_s.tolist(), ri_s.tolist())
        )

    def test_large_random(self):
        rng = np.random.default_rng(1)
        left = rng.integers(0, 5000, 20_000)
        right = rng.integers(0, 5000, 30_000)
        li_h, ri_h = hash_join_indices(left, right)
        li_s, _ = join_indices(left, right)
        assert len(li_h) == len(li_s)
        assert (left[li_h] == right[ri_h]).all()

    def test_empty_sides(self):
        li, ri = hash_join_indices(np.array([], dtype=np.int64), np.array([1]))
        assert len(li) == 0
        li, ri = hash_join_indices(np.array([1]), np.array([], dtype=np.int64))
        assert len(li) == 0
