"""Tests for the Section 3 analytic cost model and optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, GraceHashJoin, JoinSpec, TrackJoin2
from repro.costmodel import (
    CorrelationClasses,
    JoinStats,
    broadcast_cost,
    choose_algorithm,
    correlated_sample,
    estimate_classes,
    filtered_hash_join_cost,
    filtered_late_materialization_cost,
    filtered_track2_cost,
    hash_join_cost,
    late_materialization_cost,
    rank_algorithms,
    track2_cost,
    track3_cost,
    track4_cost,
    track4_shard_cost,
    track_join_beats_hash_join_width_rule,
    tracking_aware_cost,
)
from repro.errors import CostModelError

from conftest import make_tables


def unique_key_stats(
    num_nodes=16, tuples=1_000_000, key_width=4.0, payload_r=16.0, payload_s=56.0
):
    return JoinStats(
        num_nodes=num_nodes,
        tuples_r=tuples,
        tuples_s=tuples,
        distinct_r=tuples,
        distinct_s=tuples,
        key_width=key_width,
        payload_r=payload_r,
        payload_s=payload_s,
    )


class TestStats:
    def test_derived_quantities(self):
        stats = JoinStats(
            num_nodes=4,
            tuples_r=1000,
            tuples_s=4000,
            distinct_r=1000,
            distinct_s=500,
            key_width=4,
            payload_r=8,
            payload_s=8,
        )
        assert stats.nodes_per_key_r == 1.0
        assert stats.nodes_per_key_s == 4.0  # min(N, 8)
        assert stats.tuple_width_r == 12

    def test_swapped(self):
        stats = unique_key_stats(payload_r=10, payload_s=20)
        swapped = stats.swapped()
        assert swapped.payload_r == 20 and swapped.payload_s == 10

    def test_swapped_carries_max_key_fraction(self):
        stats = JoinStats(4, 100, 100, 50, 50, 4, 4, 4, max_key_fraction=0.3)
        assert stats.swapped().max_key_fraction == 0.3

    def test_validation(self):
        with pytest.raises(CostModelError):
            JoinStats(0, 1, 1, 1, 1, 4, 4, 4)
        with pytest.raises(CostModelError):
            JoinStats(4, 100, 100, 200, 100, 4, 4, 4)  # distinct > tuples
        with pytest.raises(CostModelError):
            JoinStats(4, 100, 100, 100, 100, 4, 4, 4, selectivity_r=1.5)
        with pytest.raises(CostModelError):
            JoinStats(4, 100, 100, 100, 100, 4, 4, 4, max_key_fraction=1.5)


class TestFormulas:
    def test_hash_join_cost(self):
        stats = unique_key_stats()
        expected = 1e6 * (4 + 16) + 1e6 * (4 + 56)
        assert hash_join_cost(stats) == pytest.approx(expected)
        discounted = hash_join_cost(stats, include_local_discount=True)
        assert discounted == pytest.approx(expected * 15 / 16)

    def test_broadcast_cost(self):
        stats = unique_key_stats()
        assert broadcast_cost(stats, "R") == pytest.approx(1e6 * 20 * 15)
        assert broadcast_cost(stats, "S") == pytest.approx(1e6 * 60 * 15)
        with pytest.raises(CostModelError):
            broadcast_cost(stats, "Q")

    def test_track2_unique_keys(self):
        """With unique keys, 2TJ-R ~ tracking + locations + R tuples once."""
        stats = unique_key_stats()
        cost = track2_cost(stats, "RS")
        tracking = 2 * 1e6 * 4
        locations = 1e6 * 4
        tuples = 1e6 * 20
        assert cost == pytest.approx(tracking + locations + tuples)

    def test_track2_directions_differ(self):
        stats = unique_key_stats(payload_r=10, payload_s=100)
        assert track2_cost(stats, "RS") < track2_cost(stats, "SR")

    def test_track3_default_picks_cheaper(self):
        stats = unique_key_stats(payload_r=10, payload_s=100)
        assert track3_cost(stats) <= track3_cost(
            stats, CorrelationClasses(rs=0.5, sr=0.5)
        )

    def test_track3_rejects_hashlike_class(self):
        with pytest.raises(CostModelError):
            track3_cost(unique_key_stats(), CorrelationClasses(rs=0.5, sr=0.3, hashlike=0.2))

    def test_correlation_classes_validation(self):
        with pytest.raises(CostModelError):
            CorrelationClasses(rs=0.5, sr=0.6)

    def test_track4_with_hashlike_class(self):
        stats = unique_key_stats()
        mixed = track4_cost(stats, CorrelationClasses(rs=0.4, sr=0.4, hashlike=0.2))
        assert mixed > 0

    def test_width_rule(self):
        assert track_join_beats_hash_join_width_rule(unique_key_stats(payload_s=56))
        assert not track_join_beats_hash_join_width_rule(
            unique_key_stats(payload_r=4.0, payload_s=6.0)
        )

    def test_late_materialization_formulas(self):
        stats = unique_key_stats()
        output = 1e6
        late = late_materialization_cost(stats, output)
        aware = tracking_aware_cost(stats, output)
        assert aware < late  # min(w) + wk < wR + wS here

    def test_filtered_costs_positive_and_ordered(self):
        stats = JoinStats(
            num_nodes=8,
            tuples_r=1e6,
            tuples_s=1e6,
            distinct_r=1e6,
            distinct_s=1e6,
            key_width=4,
            payload_r=16,
            payload_s=56,
            selectivity_r=0.1,
            selectivity_s=0.1,
        )
        hj = filtered_hash_join_cost(stats, filter_width=1.25, error=0.01)
        lm = filtered_late_materialization_cost(stats, 1.25, 0.01, output_tuples=1e5)
        tj = filtered_track2_cost(stats, 1.25, 0.01)
        assert hj > 0 and lm > 0 and tj > 0
        # Track join sends less than the key column alone after filtering.
        assert tj < hj


class TestFormulaVsSimulation:
    """The analytic formulas must track the simulator on uniform data."""

    def test_hash_join_formula_matches_simulation(self):
        cluster = Cluster(8)
        keys = np.arange(20_000, dtype=np.int64)
        table_r, table_s = make_tables(cluster, keys, keys, 128, 448, seed=1)
        spec = JoinSpec()
        measured = GraceHashJoin().run(cluster, table_r, table_s, spec).network_bytes
        stats = JoinStats(
            num_nodes=8,
            tuples_r=20_000,
            tuples_s=20_000,
            distinct_r=20_000,
            distinct_s=20_000,
            key_width=4,
            payload_r=16,
            payload_s=56,
        )
        predicted = hash_join_cost(stats, include_local_discount=True)
        assert measured == pytest.approx(predicted, rel=0.02)

    def test_track2_formula_matches_simulation(self):
        cluster = Cluster(8)
        keys = np.arange(20_000, dtype=np.int64)
        table_r, table_s = make_tables(cluster, keys, keys, 128, 448, seed=2)
        spec = JoinSpec(location_width=1.0)
        measured = TrackJoin2("RS").run(cluster, table_r, table_s, spec).network_bytes
        stats = JoinStats(
            num_nodes=8,
            tuples_r=20_000,
            tuples_s=20_000,
            distinct_r=20_000,
            distinct_s=20_000,
            key_width=4,
            payload_r=16,
            payload_s=56,
            location_width=1.0,
        )
        predicted = track2_cost(stats, "RS")
        # The formula omits the location-width byte and local discounts,
        # so agreement is approximate but must be within 15%.
        assert measured == pytest.approx(predicted, rel=0.15)


class TestOptimizer:
    def test_broadcast_wins_for_tiny_table(self):
        stats = JoinStats(
            num_nodes=16,
            tuples_r=1000,
            tuples_s=10**8,
            distinct_r=1000,
            distinct_s=10**8,
            key_width=4,
            payload_r=16,
            payload_s=16,
        )
        assert choose_algorithm(stats).algorithm == "BJ-R"

    def test_hash_join_wins_for_narrow_payloads(self):
        stats = unique_key_stats(payload_r=2.0, payload_s=2.0)
        choice = choose_algorithm(stats)
        assert choice.algorithm == "HJ"
        assert "narrow" in choice.note

    def test_track_join_wins_for_wide_payloads(self):
        stats = unique_key_stats(payload_r=16.0, payload_s=56.0)
        choice = choose_algorithm(stats)
        assert choice.algorithm.startswith("2TJ")

    def test_ranking_is_sorted(self):
        ranking = rank_algorithms(unique_key_stats())
        costs = [estimate.cost_bytes for estimate in ranking]
        assert costs == sorted(costs)


class TestShardCost:
    def _skewed_stats(self, max_key_fraction=0.2):
        return JoinStats(
            num_nodes=16,
            tuples_r=100_000,
            tuples_s=100_000,
            distinct_r=10_000,
            distinct_s=10_000,
            key_width=4,
            payload_r=16,
            payload_s=56,
            max_key_fraction=max_key_fraction,
        )

    def test_no_skew_matches_track4(self):
        stats = self._skewed_stats(max_key_fraction=0.0)
        assert track4_shard_cost(stats) == track4_cost(stats)
        # At or below the hot threshold nothing is sharded either.
        at = self._skewed_stats(max_key_fraction=0.05)
        assert track4_shard_cost(at, hot_fraction=0.05) == track4_cost(at)

    def test_replication_premium_grows_with_skew(self):
        mild = track4_shard_cost(self._skewed_stats(0.1))
        heavy = track4_shard_cost(self._skewed_stats(0.4))
        base = track4_cost(self._skewed_stats(0.1))
        assert base < mild < heavy

    def test_max_shards_caps_premium(self):
        stats = self._skewed_stats(0.4)
        capped = track4_shard_cost(stats, max_shards=2)
        uncapped = track4_shard_cost(stats)
        assert capped <= uncapped

    def test_load_weighted_ranking_prefers_skew_resistant(self):
        """With heavy skew and a positive load weight, the sharded
        operator displaces plain 4TJ in the ranking even though its
        reported cost is higher."""
        stats = self._skewed_stats(0.4)
        unweighted = rank_algorithms(stats)
        weighted = rank_algorithms(stats, load_weight=4.0)
        position = {e.algorithm: i for i, e in enumerate(weighted)}
        assert position["4TJ-shard"] < position["4TJ"]
        # Reported cost bytes are the unweighted estimates either way.
        unweighted_costs = {e.algorithm: e.cost_bytes for e in unweighted}
        for estimate in weighted:
            assert estimate.cost_bytes == unweighted_costs[estimate.algorithm]

    def test_load_weight_zero_keeps_order(self):
        stats = self._skewed_stats(0.4)
        assert [e.algorithm for e in rank_algorithms(stats)] == [
            e.algorithm for e in rank_algorithms(stats, load_weight=0.0)
        ]

    def test_negative_load_weight_rejected(self):
        with pytest.raises(CostModelError):
            rank_algorithms(self._skewed_stats(), load_weight=-1.0)

    def test_choose_algorithm_notes_displacement(self):
        stats = self._skewed_stats(0.4)
        unweighted = choose_algorithm(stats)
        weighted = choose_algorithm(stats, load_weight=4.0)
        if weighted.algorithm != unweighted.algorithm:
            assert "load weighting displaced" in weighted.note


class TestCorrelatedSampling:
    def test_sample_preserves_join_relationships(self):
        cluster = Cluster(4)
        keys = np.arange(50_000, dtype=np.int64)
        table_r, table_s = make_tables(cluster, keys, keys, seed=7)
        from repro.encoding import DictionaryEncoding

        sample = correlated_sample(table_r, table_s, rate=0.05, encoding=DictionaryEncoding())
        # Every sampled key must appear with both its R and S presence.
        tracking = sample.tracking
        per_key_r = np.add.reduceat(tracking.size_r, tracking.key_starts)
        per_key_s = np.add.reduceat(tracking.size_s, tracking.key_starts)
        assert (per_key_r > 0).all()
        assert (per_key_s > 0).all()

    def test_estimated_cost_close_to_truth(self):
        cluster = Cluster(4)
        rng = np.random.default_rng(5)
        keys_r = rng.integers(0, 30_000, 60_000)
        keys_s = rng.integers(0, 30_000, 60_000)
        table_r, table_s = make_tables(cluster, keys_r, keys_s, seed=8)
        from repro.encoding import DictionaryEncoding

        encoding = DictionaryEncoding()
        sample = correlated_sample(table_r, table_s, rate=0.2, encoding=encoding)
        classes, estimated = estimate_classes(sample)
        full = correlated_sample(table_r, table_s, rate=1.0, encoding=encoding)
        _, exact = estimate_classes(full)
        assert estimated == pytest.approx(exact, rel=0.15)
        assert classes.rs + classes.sr + classes.hashlike == pytest.approx(1.0)

    def test_invalid_rate(self):
        cluster = Cluster(2)
        table_r, table_s = make_tables(cluster, np.arange(10), np.arange(10))
        from repro.encoding import DictionaryEncoding

        with pytest.raises(CostModelError):
            correlated_sample(table_r, table_s, rate=0.0, encoding=DictionaryEncoding())
