"""Unit and property tests for the value encodings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.encoding import (
    DeltaEncoding,
    DictionaryEncoding,
    FixedByteEncoding,
    PrefixCodec,
    VarByteEncoding,
    delta_encoded_size,
    min_bits,
    pack_bits,
    prefix_partitioned_size,
    unpack_bits,
)
from repro.storage import Column


class TestFixedByte:
    @pytest.mark.parametrize(
        "bits,expected", [(1, 1), (8, 1), (9, 2), (16, 2), (17, 4), (30, 4), (33, 8), (64, 8)]
    )
    def test_column_width(self, bits, expected):
        assert FixedByteEncoding().column_width_bytes(Column("c", bits=bits)) == expected

    def test_char_column(self):
        assert FixedByteEncoding().column_width_bytes(Column("c", char_length=23)) == 23

    def test_roundtrip(self):
        values = np.array([0, 1, 2**31 - 1], dtype=np.int64)
        enc = FixedByteEncoding(value_bits=32)
        assert np.array_equal(enc.decode(enc.encode(values), 3), values)


class TestVarByte:
    @pytest.mark.parametrize("digits,expected", [(1, 1), (2, 1), (3, 2), (9, 5), (12, 6)])
    def test_column_width(self, digits, expected):
        col = Column("c", bits=40, decimal_digits=digits)
        assert VarByteEncoding().column_width_bytes(col) == expected

    def test_wire_bytes_for_value(self):
        assert VarByteEncoding.wire_bytes_for_value(7) == 1
        assert VarByteEncoding.wire_bytes_for_value(99) == 1
        assert VarByteEncoding.wire_bytes_for_value(100) == 2
        assert VarByteEncoding.wire_bytes_for_value(123456) == 3

    @given(st.lists(st.integers(0, 10**15), max_size=50))
    def test_roundtrip(self, raw):
        values = np.array(raw, dtype=np.int64)
        enc = VarByteEncoding()
        assert np.array_equal(enc.decode(enc.encode(values), len(values)), values)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            VarByteEncoding().encode(np.array([-1]))


class TestDictionary:
    def test_min_bits(self):
        assert min_bits(1) == 1
        assert min_bits(2) == 1
        assert min_bits(3) == 2
        assert min_bits(256) == 8
        assert min_bits(257) == 9

    def test_column_width_fractional(self):
        assert DictionaryEncoding().column_width_bytes(Column("c", bits=30)) == pytest.approx(
            3.75
        )

    @given(st.lists(st.integers(-(10**9), 10**9), min_size=1, max_size=100))
    def test_roundtrip(self, raw):
        values = np.array(raw, dtype=np.int64)
        enc = DictionaryEncoding()
        assert np.array_equal(enc.decode(enc.encode(values), len(values)), values)

    @given(
        st.integers(1, 63),
        st.lists(st.integers(0, 2**40), min_size=0, max_size=64),
    )
    def test_pack_unpack_bits(self, bits, raw):
        values = np.array([v % (2**bits) for v in raw], dtype=np.int64)
        packed = pack_bits(values, bits)
        assert len(packed) <= (len(values) * bits + 7) // 8 + 1
        assert np.array_equal(unpack_bits(packed, bits, len(values)), values)


class TestDelta:
    def test_dense_keys_compress_to_one_byte_each(self):
        keys = np.arange(1000, dtype=np.int64)
        assert delta_encoded_size(keys) == 1000

    def test_sparse_keys_cost_more(self):
        keys = np.arange(0, 100_000_000, 100_000, dtype=np.int64)
        assert delta_encoded_size(keys) > len(keys)

    def test_empty(self):
        assert delta_encoded_size(np.array([], dtype=np.int64)) == 0

    @given(st.lists(st.integers(0, 2**40), max_size=100))
    def test_roundtrip_sorted(self, raw):
        values = np.array(sorted(raw), dtype=np.int64)
        enc = DeltaEncoding()
        decoded = enc.decode(enc.encode(values), len(values))
        assert np.array_equal(decoded, values)

    def test_order_insensitive_size(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 10**6, 500)
        shuffled = keys.copy()
        rng.shuffle(shuffled)
        assert delta_encoded_size(keys) == delta_encoded_size(shuffled)


class TestPrefix:
    def test_size_decreases_with_shared_prefixes(self):
        # Dense values share prefixes, so a prefix split saves bytes.
        values = np.arange(4096, dtype=np.int64)
        plain = prefix_partitioned_size(values, 32, 0)
        split = prefix_partitioned_size(values, 32, 20)
        assert split < plain

    def test_invalid_prefix_bits(self):
        with pytest.raises(ValueError):
            prefix_partitioned_size(np.arange(4), 16, 20)

    @given(st.lists(st.integers(0, 2**30 - 1), min_size=1, max_size=100))
    def test_codec_roundtrip(self, raw):
        values = np.array(raw, dtype=np.int64)
        codec = PrefixCodec(value_bits=30, prefix_bits=12)
        decoded = codec.decode(codec.encode(values))
        assert np.array_equal(np.sort(decoded), np.sort(values))

    def test_codec_validation(self):
        with pytest.raises(ValueError):
            PrefixCodec(value_bits=16, prefix_bits=16)
