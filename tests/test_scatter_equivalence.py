"""Golden equivalence of the fused scatter fast path vs the loop reference.

The storage layer and every distributed operator run in one of two
modes (:mod:`repro.fastpath`): ``loop`` preserves the original
per-destination Python loops verbatim, ``fused`` routes everything
through cached key indexes and single-gather splits.  These properties
pin the contract that makes the fast path safe to ship: for identical
inputs the two modes must produce the identical output multiset, the
identical per-link and per-class traffic ledger byte-for-byte, and the
identical execution profile.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import (
    BroadcastJoin,
    Cluster,
    GraceHashJoin,
    TrackJoin2,
    TrackJoin3,
    TrackJoin4,
)
from repro.core.schedule import generate_schedules
from repro.core.tracking import TrackingTable
from repro.fastpath import FUSED, LOOP, use_scatter_mode
from repro.joins.tracking_aware import LateMaterializationHashJoin, TrackingAwareHashJoin
from repro.storage.table import LocalPartition
from repro.util import segment_boundaries

from conftest import canonical_output, make_tables

ALGORITHMS = (
    lambda: TrackJoin2("RS"),
    lambda: TrackJoin2("SR"),
    TrackJoin3,
    TrackJoin4,
    GraceHashJoin,
    lambda: BroadcastJoin("R"),
    lambda: BroadcastJoin("S"),
)


@st.composite
def join_instance(draw):
    num_nodes = draw(st.integers(2, 6))
    keys_r = draw(st.lists(st.integers(0, 40), min_size=0, max_size=120))
    keys_s = draw(st.lists(st.integers(0, 40), min_size=0, max_size=120))
    seed = draw(st.integers(0, 1000))
    return num_nodes, keys_r, keys_s, seed


def run_in_mode(mode, factory, instance):
    num_nodes, keys_r, keys_s, seed = instance
    with use_scatter_mode(mode):
        cluster = Cluster(num_nodes)
        table_r, table_s = make_tables(
            cluster,
            np.array(keys_r, dtype=np.int64),
            np.array(keys_s, dtype=np.int64),
            seed=seed,
        )
        return factory().run(cluster, table_r, table_s)


def assert_profiles_identical(loop_profile, fused_profile):
    assert [(s.name, s.kind, s.rate_class) for s in loop_profile.steps] == [
        (s.name, s.kind, s.rate_class) for s in fused_profile.steps
    ]
    for loop_step, fused_step in zip(loop_profile.steps, fused_profile.steps):
        assert np.array_equal(loop_step.per_node_bytes, fused_step.per_node_bytes), (
            loop_step.name
        )


class TestJoinEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(join_instance())
    def test_all_algorithms_identical_across_modes(self, instance):
        """Output multiset, ledger, and profile match exactly per mode."""
        for factory in ALGORITHMS:
            loop = run_in_mode(LOOP, factory, instance)
            fused = run_in_mode(FUSED, factory, instance)
            assert np.array_equal(canonical_output(loop), canonical_output(fused))
            assert loop.traffic.by_class == fused.traffic.by_class
            assert loop.traffic.by_link == fused.traffic.by_link
            assert loop.traffic.local_bytes == fused.traffic.local_bytes
            assert_profiles_identical(loop.profile, fused.profile)

    @settings(max_examples=6, deadline=None)
    @given(join_instance())
    def test_rid_joins_identical_across_modes(self, instance):
        """The rid-based baselines also ride the fast path unchanged."""
        for factory in (LateMaterializationHashJoin, TrackingAwareHashJoin):
            loop = run_in_mode(LOOP, factory, instance)
            fused = run_in_mode(FUSED, factory, instance)
            assert np.array_equal(canonical_output(loop), canonical_output(fused))
            assert loop.traffic.by_class == fused.traffic.by_class
            assert loop.traffic.by_link == fused.traffic.by_link


@st.composite
def tracking_instance(draw):
    """A random tracking table: per-key per-node sizes for both sides."""
    num_nodes = draw(st.integers(2, 6))
    num_keys = draw(st.integers(1, 12))
    keys, nodes, size_r, size_s = [], [], [], []
    for key in range(num_keys):
        holders = draw(
            st.lists(
                st.integers(0, num_nodes - 1), min_size=1, max_size=num_nodes, unique=True
            )
        )
        for node in sorted(holders):
            keys.append(key)
            nodes.append(node)
            size_r.append(float(draw(st.integers(0, 50))))
            size_s.append(float(draw(st.integers(0, 50))))
    t_nodes = [draw(st.integers(0, num_nodes - 1)) for _ in range(num_keys)]
    keys = np.array(keys, dtype=np.int64)
    return TrackingTable(
        keys=keys,
        nodes=np.array(nodes, dtype=np.int64),
        size_r=np.array(size_r),
        size_s=np.array(size_s),
        key_starts=segment_boundaries(keys),
        t_nodes=np.array(t_nodes, dtype=np.int64),
    )


class TestScheduleEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(tracking_instance(), st.floats(0.0, 8.0), st.booleans())
    def test_generate_schedules_bitwise_identical(
        self, tracking, location_width, allow_migration
    ):
        """Fused dual-direction costing matches two reference passes."""
        with use_scatter_mode(LOOP):
            loop = generate_schedules(tracking, location_width, allow_migration)
        with use_scatter_mode(FUSED):
            fused = generate_schedules(tracking, location_width, allow_migration)
        assert np.array_equal(loop.direction_rs, fused.direction_rs)
        assert np.array_equal(loop.cost, fused.cost)
        assert np.array_equal(loop.cost_rs, fused.cost_rs)
        assert np.array_equal(loop.cost_sr, fused.cost_sr)
        assert np.array_equal(loop.migrate, fused.migrate)
        assert np.array_equal(loop.dest_node, fused.dest_node)

    def test_paired_shape_exercises_blocked_path(self):
        """All-pairs tables (<=2 entries/key) hit the blocked paired path.

        Deterministic coverage of `_both_direction_costs_paired`: the
        dominant one-R-holder/one-S-holder shape, including single-entry
        keys, local pairs (same node both sides), and keys whose T node
        coincides with a holder, checked bitwise against the reference.
        """
        num_nodes = 4
        rng = np.random.default_rng(7)
        num_keys = 300
        entries_per_key = rng.integers(1, 3, num_keys)  # 1 or 2, never more
        keys, nodes, size_r, size_s = [], [], [], []
        for key in range(num_keys):
            holders = rng.choice(num_nodes, size=entries_per_key[key], replace=False)
            for node in sorted(holders):
                keys.append(key)
                nodes.append(node)
                size_r.append(float(rng.integers(0, 60)))
                size_s.append(float(rng.integers(0, 60)))
        keys = np.array(keys, dtype=np.int64)
        tracking = TrackingTable(
            keys=keys,
            nodes=np.array(nodes, dtype=np.int64),
            size_r=np.array(size_r),
            size_s=np.array(size_s),
            key_starts=segment_boundaries(keys),
            t_nodes=rng.integers(0, num_nodes, num_keys),
        )
        for location_width in (0.0, 1.0, 3.75):
            for allow_migration in (False, True):
                with use_scatter_mode(LOOP):
                    loop = generate_schedules(tracking, location_width, allow_migration)
                with use_scatter_mode(FUSED):
                    fused = generate_schedules(tracking, location_width, allow_migration)
                assert np.array_equal(loop.direction_rs, fused.direction_rs)
                assert np.array_equal(loop.cost, fused.cost)
                assert np.array_equal(loop.cost_rs, fused.cost_rs)
                assert np.array_equal(loop.cost_sr, fused.cost_sr)
                assert np.array_equal(loop.migrate, fused.migrate)
                assert np.array_equal(loop.dest_node, fused.dest_node)


@st.composite
def partition_instance(draw):
    n = draw(st.integers(0, 200))
    keys = draw(st.lists(st.integers(0, 30), min_size=n, max_size=n))
    part = LocalPartition(
        keys=np.array(keys, dtype=np.int64),
        columns={"rid": np.arange(n, dtype=np.int64)},
    )
    num_buckets = draw(st.integers(1, 8))
    destinations = np.array(
        draw(st.lists(st.integers(0, num_buckets - 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    return part, destinations, num_buckets


class TestSplitPrimitives:
    @settings(max_examples=40, deadline=None)
    @given(partition_instance())
    def test_split_by_identical_rows_and_order(self, instance):
        """split_by buckets agree element-for-element across modes."""
        part, destinations, num_buckets = instance
        with use_scatter_mode(LOOP):
            loop = part.split_by(destinations, num_buckets)
        with use_scatter_mode(FUSED):
            fused = part.split_by(destinations, num_buckets)
        assert len(loop) == len(fused) == num_buckets
        for a, b in zip(loop, fused):
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(a.keys, b.keys)
                assert np.array_equal(a.columns["rid"], b.columns["rid"])

    @settings(max_examples=40, deadline=None)
    @given(partition_instance(), st.integers(0, 3))
    def test_hash_split_same_multiset_per_bucket(self, instance, seed):
        """hash_split may reorder within a bucket but never across."""
        part, _destinations, num_buckets = instance
        with use_scatter_mode(LOOP):
            loop = part.hash_split(num_buckets, seed)
        with use_scatter_mode(FUSED):
            fused = part.hash_split(num_buckets, seed)
        for a, b in zip(loop, fused):
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(np.sort(a.keys), np.sort(b.keys))
                assert np.array_equal(
                    np.sort(a.columns["rid"]), np.sort(b.columns["rid"])
                )
