"""Repo-wide self-lint: tier-1 fails if a violation is reintroduced.

The REP rule set encodes contracts the runtime depends on (seeded
randomness, barrier-staged sends, the ReproError hierarchy, the
zero-copy payload rule).  Running the analyzer over ``src/repro``
inside pytest makes the lint gate part of the tier-1 suite, so a future
PR cannot silently regress an invariant that only CI's lint job would
have caught.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def test_repo_source_is_lint_clean():
    report = lint_paths([REPO_SRC])
    assert report.clean, "\n" + report.render_text()


def test_exchange_package_is_lint_clean():
    """The communication layer gets its own gate (make test-exchange).

    Every send in ``repro.exchange`` must honor the staging contracts
    the REP rules encode — it is the one place all operators now route
    their traffic through.
    """
    report = lint_paths([REPO_SRC / "exchange"])
    assert report.clean, "\n" + report.render_text()
    assert report.files_scanned == 8


def test_lint_sweep_covers_the_whole_tree():
    report = lint_paths([REPO_SRC])
    # The analyzer itself, the operators, and every subsystem package:
    # a sweep that silently scanned a subset would gut the gate.
    assert report.files_scanned >= 85
    assert report.summary()["rules"] == [
        "REP001",
        "REP002",
        "REP003",
        "REP004",
        "REP005",
        "REP006",
    ]
