"""Tests for the determinism/aliasing static-analysis suite and sanitizer.

Each REP rule gets a violating fixture snippet (must fire) and a clean
counterpart (must stay silent); suppression comments, both reporters,
the CLI entry points, and the runtime payload sanitizer are covered
alongside.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Cluster
from repro.__main__ import main
from repro.analysis import (
    lint_paths,
    lint_source,
    sanitized,
    sanitizer_disable,
    sanitizer_enable,
    sanitizer_enabled,
)
from repro.cluster.network import MessageClass
from repro.errors import AnalysisError, ReproError, UnknownKeyError, ValidationError


def codes_of(source: str) -> list[str]:
    diagnostics, _ = lint_source(source, "snippet.py")
    return [d.code for d in diagnostics]


class TestRep001UnseededRandomness:
    def test_unseeded_default_rng_fires(self):
        assert codes_of("import numpy as np\nrng = np.random.default_rng()\n") == [
            "REP001"
        ]

    def test_seeded_default_rng_is_clean(self):
        assert codes_of("import numpy as np\nrng = np.random.default_rng(7)\n") == []

    def test_global_numpy_state_fires(self):
        assert codes_of("import numpy as np\nx = np.random.randint(0, 5)\n") == [
            "REP001"
        ]
        assert codes_of("import numpy as np\nnp.random.seed(0)\n") == ["REP001"]

    def test_stdlib_random_module_fires(self):
        assert codes_of("import random\nx = random.random()\n") == ["REP001"]
        assert codes_of("import random\nr = random.Random()\n") == ["REP001"]

    def test_seeded_stdlib_random_instance_is_clean(self):
        assert codes_of("import random\nr = random.Random(13)\n") == []


class TestRep002WallClockAndSetOrder:
    def test_time_call_fires(self):
        assert codes_of("import time\nt = time.perf_counter()\n") == ["REP002"]
        assert codes_of("import time\nt = time.time()\n") == ["REP002"]

    def test_from_import_clock_fires(self):
        source = "from time import perf_counter\nt = perf_counter()\n"
        assert codes_of(source) == ["REP002"]

    def test_timing_and_perf_modules_are_exempt(self):
        source = "import time\nt = time.perf_counter()\n"
        for exempt_path in (
            "src/repro/timing/profile.py",
            "src/repro/perf/bench.py",
        ):
            diagnostics, _ = lint_source(source, exempt_path)
            assert diagnostics == []

    def test_set_iteration_feeding_send_fires(self):
        source = (
            "def scatter(net, nodes):\n"
            "    for dst in set(nodes):\n"
            "        net.send(0, dst, None, 1.0)\n"
        )
        assert codes_of(source) == ["REP002"]

    def test_set_iteration_without_network_state_is_clean(self):
        source = "def f(nodes):\n    for dst in set(nodes):\n        print(dst)\n"
        assert codes_of(source) == []

    def test_sorted_set_iteration_is_clean(self):
        source = (
            "def scatter(net, nodes):\n"
            "    for dst in sorted(set(nodes)):\n"
            "        net.send(0, dst, None, 1.0)\n"
        )
        assert codes_of(source) == []


class TestRep003SendLaneBypass:
    def test_private_inbox_access_fires(self):
        source = "def sneak(net, msg):\n    net._inboxes[0].append(msg)\n"
        assert codes_of(source) == ["REP003"]

    def test_unstaged_closure_send_fires(self):
        source = (
            "def build(cluster):\n"
            "    def task(i):\n"
            "        cluster.network.send(i, 0, None, 1.0)\n"
            "    return task\n"
        )
        assert codes_of(source) == ["REP003"]

    def test_run_phase_closure_is_clean(self):
        source = (
            "def phase(cluster):\n"
            "    def task(i):\n"
            "        cluster.network.send(i, 0, None, 1.0)\n"
            "    cluster.run_phase(task)\n"
        )
        assert codes_of(source) == []

    def test_own_phase_lanes_attribute_is_clean(self):
        source = (
            "class Profile:\n"
            "    def end_phase(self):\n"
            "        self._phase_lanes = None\n"
        )
        assert codes_of(source) == []


class TestRep004BareBuiltinRaise:
    def test_bare_value_error_fires(self):
        assert codes_of("def f():\n    raise ValueError('bad')\n") == ["REP004"]

    def test_bare_exception_class_fires(self):
        assert codes_of("def f():\n    raise Exception\n") == ["REP004"]

    def test_hierarchy_raise_is_clean(self):
        source = (
            "from repro.errors import ValidationError\n"
            "def f():\n    raise ValidationError('bad')\n"
        )
        assert codes_of(source) == []

    def test_not_implemented_and_reraise_are_clean(self):
        source = (
            "def f():\n    raise NotImplementedError\n"
            "def g():\n"
            "    try:\n        pass\n"
            "    except KeyError:\n        raise\n"
        )
        assert codes_of(source) == []

    def test_dual_inheritance_keeps_builtin_catches_working(self):
        assert issubclass(ValidationError, ValueError)
        assert issubclass(ValidationError, ReproError)
        assert issubclass(UnknownKeyError, KeyError)
        assert issubclass(UnknownKeyError, ReproError)


class TestRep005WriteAfterSend:
    def test_subscript_store_after_send_fires(self):
        source = (
            "def f(net, buf):\n"
            "    net.send(0, 1, None, 8.0, payload=buf)\n"
            "    buf[0] = 9\n"
        )
        assert codes_of(source) == ["REP005"]

    def test_positional_payload_fires(self):
        source = (
            "def f(net, cat, buf):\n"
            "    net.send(0, 1, cat, 8.0, buf)\n"
            "    buf += 1\n"
        )
        assert codes_of(source) == ["REP005"]

    def test_inplace_method_after_send_fires(self):
        source = (
            "def f(net, buf):\n"
            "    net.send(0, 1, None, 8.0, payload=buf)\n"
            "    buf.sort()\n"
        )
        assert codes_of(source) == ["REP005"]

    def test_out_kwarg_after_send_fires(self):
        source = (
            "import numpy as np\n"
            "def f(net, buf, other):\n"
            "    net.send(0, 1, None, 8.0, payload=buf)\n"
            "    np.add(other, 1, out=buf)\n"
        )
        assert codes_of(source) == ["REP005"]

    def test_rebind_then_mutate_is_clean(self):
        source = (
            "def f(net, buf):\n"
            "    net.send(0, 1, None, 8.0, payload=buf)\n"
            "    buf = buf.copy()\n"
            "    buf[0] = 9\n"
        )
        assert codes_of(source) == []


class TestRep006SwallowedException:
    def test_bare_except_pass_fires(self):
        source = (
            "def f():\n"
            "    try:\n        work()\n"
            "    except:\n        pass\n"
        )
        assert codes_of(source) == ["REP006"]

    def test_blanket_exception_without_reraise_fires(self):
        source = (
            "def f():\n"
            "    try:\n        work()\n"
            "    except Exception as exc:\n        log(exc)\n"
        )
        assert codes_of(source) == ["REP006"]

    def test_base_exception_in_tuple_fires(self):
        source = (
            "def f():\n"
            "    try:\n        work()\n"
            "    except (KeyError, BaseException):\n        cleanup()\n"
        )
        assert codes_of(source) == ["REP006"]

    def test_reraise_is_clean(self):
        source = (
            "def f():\n"
            "    try:\n        work()\n"
            "    except BaseException:\n"
            "        cleanup()\n        raise\n"
        )
        assert codes_of(source) == []

    def test_raise_from_wrapping_is_clean(self):
        source = (
            "def f():\n"
            "    try:\n        work()\n"
            "    except Exception as exc:\n"
            "        raise ReproError('wrapped') from exc\n"
        )
        assert codes_of(source) == []

    def test_narrow_handler_is_clean(self):
        source = (
            "def f():\n"
            "    try:\n        work()\n"
            "    except (ValueError, KeyError):\n        pass\n"
        )
        assert codes_of(source) == []

    def test_conditional_reraise_is_clean(self):
        """A re-raise anywhere in the handler body counts, even nested."""
        source = (
            "def f():\n"
            "    try:\n        work()\n"
            "    except Exception as exc:\n"
            "        if fatal(exc):\n            raise\n"
        )
        assert codes_of(source) == []

    def test_mutation_before_send_is_clean(self):
        source = (
            "def f(net, buf):\n"
            "    buf[0] = 9\n"
            "    net.send(0, 1, None, 8.0, payload=buf)\n"
        )
        assert codes_of(source) == []


class TestSuppression:
    def test_matching_code_suppresses_and_is_counted(self):
        source = "def f():\n    raise ValueError('x')  # repro: noqa[REP004]\n"
        diagnostics, suppressed = lint_source(source, "snippet.py")
        assert diagnostics == []
        assert suppressed == 1

    def test_non_matching_code_does_not_suppress(self):
        source = "def f():\n    raise ValueError('x')  # repro: noqa[REP001]\n"
        diagnostics, _ = lint_source(source, "snippet.py")
        assert [d.code for d in diagnostics] == ["REP004"]

    def test_blanket_noqa_suppresses_everything(self):
        source = "def f():\n    raise ValueError('x')  # repro: noqa\n"
        diagnostics, suppressed = lint_source(source, "snippet.py")
        assert diagnostics == []
        assert suppressed == 1

    def test_multi_code_list(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: noqa[REP001,REP005]\n"
        )
        diagnostics, suppressed = lint_source(source, "snippet.py")
        assert diagnostics == []
        assert suppressed == 1


class TestEngineAndReporters:
    def test_diagnostic_render_format(self):
        source = "def f():\n    raise ValueError('x')\n"
        diagnostics, _ = lint_source(source, "pkg/mod.py")
        assert len(diagnostics) == 1
        rendered = diagnostics[0].render()
        assert rendered.startswith("pkg/mod.py:2: REP004 ")

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        report = lint_paths([tmp_path])
        assert report.files_scanned == 2
        assert [d.code for d in report.diagnostics] == ["REP002"]
        assert not report.clean
        assert report.by_code() == {"REP002": 1}

    def test_json_reporter_shape(self, tmp_path):
        (tmp_path / "bad.py").write_text("def f():\n    raise ValueError('x')\n")
        report = lint_paths([tmp_path])
        payload = json.loads(report.render_json())
        assert payload["diagnostics"] == 1
        assert payload["by_code"] == {"REP004": 1}
        assert payload["rules"] == [
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        ]
        assert payload["findings"][0]["code"] == "REP004"
        assert payload["findings"][0]["line"] == 2

    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError):
            lint_source("def f(:\n", "broken.py")

    def test_missing_target_raises(self):
        with pytest.raises(AnalysisError):
            lint_paths(["no/such/path.py"])


class TestCli:
    def test_lint_subcommand_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REP002" in out

    def test_lint_json_format(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "format=json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True

    def test_lint_bad_option_exits_2(self, tmp_path, capsys):
        assert main(["lint", "format=yaml"]) == 2
        assert main(["lint", "frmat=json"]) == 2

    def test_malformed_experiment_option_exits_2(self, capsys):
        assert main(["fig3", "bogus-token"]) == 2
        err = capsys.readouterr().err
        assert "bogus-token" in err

    def test_unknown_experiment_still_exits_2(self, capsys):
        assert main(["no-such-experiment"]) == 2


class TestSanitizer:
    def _run_write_after_send(self):
        cluster = Cluster(4)

        def bad_task(node):
            buf = np.arange(8, dtype=np.int64)
            cluster.network.send(
                node, (node + 1) % 4, MessageClass.R_TUPLES, 8.0, payload=buf
            )
            buf[0] = 99  # deliberate write-after-send aliasing bug
            return node

        cluster.run_phase(bad_task)
        for node in range(4):
            cluster.network.deliver(node)

    def test_write_after_send_raises_when_sanitized(self):
        with sanitized():
            with pytest.raises(ValueError, match="read-only"):
                self._run_write_after_send()

    def test_write_after_send_is_silent_without_sanitizer(self):
        # Unwind every outstanding enable (the session-wide conftest one
        # included) to observe the unprotected behaviour, then restore.
        unwound = 0
        while sanitizer_enabled():
            sanitizer_disable()
            unwound += 1
        try:
            self._run_write_after_send()  # the latent bug passes silently
        finally:
            for _ in range(unwound):
                sanitizer_enable()

    def test_payload_thaws_at_barrier(self):
        cluster = Cluster(2)
        payloads = []

        def task(node):
            buf = np.arange(4, dtype=np.int64)
            payloads.append(buf)
            cluster.network.send(node, 1 - node, MessageClass.R_TUPLES, 4.0, payload=buf)

        with sanitized():
            cluster.run_phase(task)
            for buf in payloads:
                assert buf.flags.writeable  # barrier committed: thawed
            for node in range(2):
                cluster.network.deliver(node)

    def test_partition_payload_views_and_bases_freeze(self):
        cluster = Cluster(2)
        caught = []

        def task(node):
            if node != 0:
                return
            from repro.storage.table import LocalPartition

            part = LocalPartition(
                keys=np.arange(6, dtype=np.int64),
                columns={"rid": np.arange(6, dtype=np.int64)},
            )
            batches = part.split_by(np.array([0, 1, 0, 1, 0, 1]), 2)
            cluster.network.send_batches(0, MessageClass.R_TUPLES, batches, 8.0)
            for batch in batches:
                try:
                    batch.keys[0] = 7
                except ValueError:
                    caught.append(batch)

        with sanitized():
            cluster.run_phase(task)
            for node in range(2):
                cluster.network.deliver(node)
        assert len(caught) == 2

    def test_out_of_phase_sends_stay_writable(self):
        cluster = Cluster(2)
        buf = np.arange(4, dtype=np.int64)
        with sanitized():
            cluster.network.send(0, 1, MessageClass.R_TUPLES, 4.0, payload=buf)
            buf[0] = 5  # immediate-semantics send: no barrier, no freeze
        cluster.network.deliver(1)

    def test_enable_is_reference_counted(self):
        baseline = sanitizer_enabled()
        sanitizer_enable()
        sanitizer_enable()
        sanitizer_disable()
        assert sanitizer_enabled()
        sanitizer_disable()
        assert sanitizer_enabled() == baseline
