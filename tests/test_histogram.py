"""Tests for catalog synopses: equi-depth histograms and distinct sketches."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster
from repro.costmodel import choose_algorithm
from repro.costmodel.histogram import (
    KeyHistogram,
    estimate_distinct,
    heavy_hitters,
    stats_from_histograms,
)
from repro.errors import CostModelError

from conftest import make_tables


class TestDistinctSketch:
    def test_empty(self):
        assert estimate_distinct(np.array([], dtype=np.int64)) == 0.0

    @pytest.mark.parametrize("true_distinct", [100, 5_000, 100_000])
    def test_within_ten_percent(self, true_distinct):
        rng = np.random.default_rng(true_distinct)
        values = rng.choice(
            rng.integers(0, 2**50, true_distinct), size=true_distinct * 3
        )
        estimate = estimate_distinct(values)
        assert estimate == pytest.approx(len(np.unique(values)), rel=0.10)

    def test_repetition_invariant(self):
        base = np.arange(2_000, dtype=np.int64)
        once = estimate_distinct(base)
        repeated = estimate_distinct(np.repeat(base, 10))
        assert once == pytest.approx(repeated)


class TestKeyHistogram:
    def test_counts_cover_all_rows(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 10_000, 50_000)
        hist = KeyHistogram.build(keys, num_buckets=16)
        assert hist.counts.sum() == 50_000
        assert hist.total == 50_000

    def test_equi_depth_buckets(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 10**6, 64_000)
        hist = KeyHistogram.build(keys, num_buckets=16)
        # Quantile boundaries: every bucket within 2x of the mean depth.
        mean = hist.counts.mean()
        assert hist.counts.max() < 2 * mean

    def test_empty_keys(self):
        hist = KeyHistogram.build(np.array([], dtype=np.int64))
        assert hist.total == 0
        assert hist.distinct == 0.0

    def test_single_value_column(self):
        hist = KeyHistogram.build(np.full(100, 7, dtype=np.int64))
        assert hist.counts.sum() == 100

    def test_invalid_buckets(self):
        with pytest.raises(CostModelError):
            KeyHistogram.build(np.array([1]), num_buckets=0)

    def test_overlap_disjoint_ranges(self):
        a = KeyHistogram.build(np.arange(0, 1000))
        b = KeyHistogram.build(np.arange(5000, 6000))
        assert a.overlap_fraction(b) == pytest.approx(0.0, abs=0.02)

    def test_overlap_identical_ranges(self):
        a = KeyHistogram.build(np.arange(0, 1000))
        b = KeyHistogram.build(np.arange(0, 1000))
        assert a.overlap_fraction(b) == pytest.approx(1.0, abs=0.05)

    def test_overlap_partial(self):
        a = KeyHistogram.build(np.arange(0, 1000))
        b = KeyHistogram.build(np.arange(500, 1500))
        assert a.overlap_fraction(b) == pytest.approx(0.5, abs=0.1)


class TestHeavyHitters:
    def test_empty_column(self):
        values, counts = heavy_hitters(np.array([], dtype=np.int64))
        assert len(values) == 0 and len(counts) == 0

    def test_all_distinct_returns_nothing(self):
        values, _ = heavy_hitters(np.arange(100_000, dtype=np.int64), threshold=0.01)
        assert len(values) == 0

    def test_single_key_column(self):
        values, counts = heavy_hitters(np.full(1_000, 7, dtype=np.int64))
        np.testing.assert_array_equal(values, [7])
        np.testing.assert_array_equal(counts, [1_000])

    def test_threshold_boundary_is_strict(self):
        # Key 3 holds exactly 25% of the rows: a 0.25 threshold excludes
        # it (strictly greater), a marginally lower one includes it.
        keys = np.concatenate(
            [np.full(250, 3), np.arange(1_000, 1_750)]
        ).astype(np.int64)
        at_threshold, _ = heavy_hitters(keys, threshold=0.25)
        assert len(at_threshold) == 0
        below, counts = heavy_hitters(keys, threshold=0.24)
        np.testing.assert_array_equal(below, [3])
        np.testing.assert_array_equal(counts, [250])

    def test_finds_zipf_head_with_exact_counts(self):
        rng = np.random.default_rng(5)
        keys = rng.zipf(1.5, 50_000).astype(np.int64)
        values, counts = heavy_hitters(keys, threshold=0.05)
        assert len(values) >= 1
        assert 1 in values  # the Zipf head is always the hottest key
        for value, count in zip(values, counts):
            assert count == (keys == value).sum()
            assert count > 0.05 * len(keys)

    def test_invalid_threshold(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(CostModelError):
                heavy_hitters(np.array([1, 2, 3]), threshold=bad)


class TestStatsFromHistograms:
    def test_optimizer_runs_from_synopses(self):
        cluster = Cluster(8)
        rng = np.random.default_rng(3)
        table_r, table_s = make_tables(
            cluster,
            rng.integers(0, 40_000, 40_000),
            rng.integers(20_000, 60_000, 40_000),
            payload_bits_r=64,
            payload_bits_s=448,
        )
        hist_r = KeyHistogram.of_table(table_r)
        hist_s = KeyHistogram.of_table(table_s)
        stats = stats_from_histograms(
            hist_r, hist_s, num_nodes=8, key_width=4, payload_r=8, payload_s=56
        )
        assert stats.tuples_r == 40_000
        assert 0.3 < stats.selectivity_r < 0.7  # half the range overlaps
        choice = choose_algorithm(stats)
        assert choice.algorithm in {"2TJ-R", "2TJ-S", "3TJ", "4TJ", "HJ"}

    def test_distinct_estimates_feed_stats(self):
        hist_r = KeyHistogram.build(np.repeat(np.arange(500), 10))
        hist_s = KeyHistogram.build(np.arange(5000))
        stats = stats_from_histograms(
            hist_r, hist_s, num_nodes=4, key_width=4, payload_r=8, payload_s=8
        )
        assert stats.distinct_r == pytest.approx(500, rel=0.15)
        assert stats.distinct_s == pytest.approx(5000, rel=0.15)
