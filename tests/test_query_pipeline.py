"""The physical-plan pipeline: compilation, lifecycle, rekey handling.

``execute`` is now a thin wrapper over ``compile_plan(plan).run(...)``;
these tests exercise the two-stage API directly — operator
linearization order, re-runnable plans, per-run statistics caching,
and the compile-time Rekey-into-Join fusion — plus the ``Rekey``
edge cases the plan layer must reject.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, random_uniform
from repro.errors import ReproError
from repro.query import Join, Rekey, Scan, compile_plan, execute
from repro.query import executor as executor_module
from repro.query.executor import JoinOp, RekeyOp, ScanOp
from repro.storage import Column, Schema


def build_table(cluster, name, keys, columns, seed=0):
    schema = Schema(
        (Column("key", bits=32),),
        tuple(Column(c, bits=64) for c in columns),
    )
    keys = np.asarray(keys, dtype=np.int64)
    return cluster.table_from_assignment(
        name,
        schema,
        keys,
        random_uniform(len(keys), cluster.num_nodes, seed=seed),
        columns={c: np.asarray(v, dtype=np.int64) for c, v in columns.items()},
    )


def two_tables(cluster):
    rng = np.random.default_rng(42)
    orders = build_table(
        cluster,
        "orders",
        rng.integers(0, 400, 2500),
        {"amount": rng.integers(1, 100, 2500), "cust": rng.integers(0, 80, 2500)},
        seed=1,
    )
    items = build_table(
        cluster, "items", rng.integers(0, 400, 4000),
        {"qty": rng.integers(1, 10, 4000)}, seed=2,
    )
    return orders, items


def sorted_rows(table):
    """Gathered rows as a sorted comparable structure."""
    part = table.gathered()
    names = sorted(part.columns)
    stacked = np.column_stack([part.keys] + [part.columns[n] for n in names])
    order = np.lexsort(stacked.T[::-1])
    return names, stacked[order]


class TestCompilation:
    def test_postorder_linearization(self):
        cluster = Cluster(2)
        orders, items = two_tables(cluster)
        plan = Rekey(Join(Scan(orders), Scan(items), algorithm="HJ"), "r.cust")
        physical = compile_plan(plan)
        assert [type(op) for op in physical.operators] == [
            ScanOp, ScanOp, JoinOp, RekeyOp,
        ]
        join_op, rekey_op = physical.operators[2], physical.operators[3]
        assert join_op.inputs == (0, 1)
        assert rekey_op.inputs == (2,)

    def test_unknown_plan_node_rejected_at_compile_time(self):
        with pytest.raises(ReproError, match="unknown plan node type"):
            compile_plan("not a plan")

    def test_compiled_plan_is_rerunnable(self):
        cluster = Cluster(4)
        orders, items = two_tables(cluster)
        physical = compile_plan(Join(Scan(orders), Scan(items), algorithm="HJ"))
        first = physical.run(cluster)
        second = physical.run(cluster)
        assert first.output_rows == second.output_rows
        assert first.network_bytes == pytest.approx(second.network_bytes)
        assert [op.operator for op in first.operators] == [
            op.operator for op in second.operators
        ]

    def test_matches_one_shot_execute(self):
        cluster = Cluster(4)
        orders, items = two_tables(cluster)
        plan = Join(Scan(orders), Scan(items), algorithm="4TJ")
        via_pipeline = compile_plan(plan).run(cluster)
        via_execute = execute(plan, cluster)
        assert sorted_rows(via_pipeline.table)[1].tolist() == (
            sorted_rows(via_execute.table)[1].tolist()
        )
        assert via_pipeline.network_bytes == pytest.approx(via_execute.network_bytes)


class TestStatsCaching:
    def test_plan_step_measures_stats_once(self, monkeypatch):
        cluster = Cluster(4)
        orders, items = two_tables(cluster)
        physical = compile_plan(Join(Scan(orders), Scan(items)))  # auto
        calls = {"n": 0}
        real = executor_module.table_stats

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(executor_module, "table_stats", counting)
        ctx = executor_module.ExecutionContext(cluster=cluster, spec=executor_module.JoinSpec())
        scan_l, scan_r, join_op = physical.operators
        for op in (scan_l, scan_r):
            op.plan(ctx)
            op.execute(ctx)
            op.account(ctx)
        join_op.plan(ctx)
        join_op.plan(ctx)  # re-entry (adaptive re-choice) hits the cache
        assert calls["n"] == 1
        assert join_op.index in ctx.join_stats


class TestRekeyFusion:
    def _plan(self, orders, items):
        return Rekey(Join(Scan(orders), Scan(items), algorithm="HJ"), "r.cust")

    def test_fused_plan_drops_the_rekey_operator(self):
        cluster = Cluster(2)
        orders, items = two_tables(cluster)
        unfused = compile_plan(self._plan(orders, items))
        fused = compile_plan(self._plan(orders, items), fuse_rekey=True)
        assert len(fused.operators) == len(unfused.operators) - 1
        assert isinstance(fused.operators[-1], JoinOp)
        assert fused.operators[-1].fused_rekey

    def test_fused_rows_match_unfused(self):
        cluster = Cluster(4)
        orders, items = two_tables(cluster)
        unfused = execute(self._plan(orders, items), cluster)
        fused = compile_plan(self._plan(orders, items), fuse_rekey=True).run(cluster)
        assert sorted_rows(fused.table)[0] == sorted_rows(unfused.table)[0]
        assert sorted_rows(fused.table)[1].tolist() == sorted_rows(unfused.table)[1].tolist()
        # Fusion saves the extra pass: one fewer operator, same traffic.
        assert len(fused.operators) == len(unfused.operators) - 1
        assert fused.network_bytes == pytest.approx(unfused.network_bytes)
        join_note = [o for o in fused.operators if o.operator.startswith("join")][0].note
        assert "fused rekey on r.cust" in join_note

    def test_fusion_leaves_prekeyed_joins_alone(self):
        """A Join that already re-keys keeps its own rekey_on."""
        cluster = Cluster(2)
        orders, items = two_tables(cluster)
        plan = Rekey(
            Join(Scan(orders), Scan(items), algorithm="HJ", rekey_on="r.cust"),
            "key",
        )
        physical = compile_plan(plan, fuse_rekey=True)
        assert [type(op) for op in physical.operators] == [
            ScanOp, ScanOp, JoinOp, RekeyOp,
        ]


class TestRekeyEdgeCases:
    def test_rekey_on_current_key_column_rejected(self):
        """The key is not a payload column; re-keying on it is an error."""
        cluster = Cluster(2)
        table = build_table(cluster, "T", [1, 2, 3], {"v": [4, 5, 6]})
        with pytest.raises(ReproError, match="'key'"):
            execute(Rekey(Scan(table), "key"), cluster)

    def test_rekey_roundtrip_restores_original_key(self):
        """After a rekey the old key is payload, so rekeying back works."""
        cluster = Cluster(3)
        rng = np.random.default_rng(7)
        table = build_table(
            cluster, "T", rng.integers(0, 50, 300),
            {"cust": rng.integers(0, 9, 300)}, seed=3,
        )
        result = execute(Rekey(Rekey(Scan(table), "cust"), "key"), cluster)
        out = result.table.gathered()
        original = table.gathered()
        # Rows never move during rekey, so arrays match position-for-position.
        assert out.keys.tolist() == original.keys.tolist()
        assert out.columns["cust"].tolist() == original.columns["cust"].tolist()
        assert result.network_bytes == 0.0

    def test_join_rekey_on_unknown_column_lists_candidates(self):
        cluster = Cluster(2)
        orders, items = two_tables(cluster)
        with pytest.raises(ReproError, match=r"r\.cust"):
            execute(
                Join(Scan(orders), Scan(items), algorithm="HJ", rekey_on="bogus"),
                cluster,
            )
