"""Golden-equivalence suite for the exchange-operator rewiring.

The fixtures in ``tests/golden/exchange_golden.json`` were captured from
the pre-refactor operator implementations — the hand-rolled
scatter/broadcast/migrate/gather loops each join used to carry before
:mod:`repro.exchange` existed.  Every rewired operator must reproduce,
for worker counts 1, 4, and 8 on an 8-node cluster:

- a byte-identical :class:`~repro.cluster.network.TrafficLedger`
  (total bytes, per-class breakdown, local-copy bytes, message count,
  and the full per-link byte map);
- an identical :class:`~repro.timing.profile.ExecutionProfile`
  (step names, kinds, rate classes, and per-node byte vectors);
- a row-for-row identical output (same rows, same order, same dtypes).

Regenerate with ``REPRO_REGEN_GOLDEN=1 pytest tests/test_exchange_golden.py``
only when intentionally changing accounting semantics — never to paper
over an equivalence break.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import Cluster, JoinSpec
from repro.cluster.network import TrafficLedger
from repro.core.track_join import TrackJoin2, TrackJoin3, TrackJoin4
from repro.joins.broadcast import BroadcastJoin
from repro.joins.grace_hash import GraceHashJoin
from repro.joins.semijoin import SemiJoinFilteredJoin
from repro.joins.tracking_aware import LateMaterializationHashJoin, TrackingAwareHashJoin
from repro.mapreduce.joins import mr_hash_join, mr_track_join
from repro.storage.schema import Column, Schema
from repro.storage.table import LocalPartition

GOLDEN_PATH = Path(__file__).parent / "golden" / "exchange_golden.json"
NUM_NODES = 8
WORKER_COUNTS = (1, 4, 8)


# ---------------------------------------------------------------------------
# Deterministic workload
# ---------------------------------------------------------------------------


def _tables(cluster: Cluster):
    """Two overlapping tables with repetition, skew, and multi-column payloads."""
    rng = np.random.default_rng(7)
    keys_r = rng.integers(0, 600, 2500)
    # A hot key with heavy repetition on both sides exercises migration
    # (4TJ) and per-key direction choices (3TJ).
    keys_r = np.concatenate([keys_r, np.full(120, 42)])
    keys_s = np.concatenate(
        [rng.integers(200, 800, 3000), np.full(260, 42), np.full(90, 250)]
    )
    schema_r = Schema(
        (Column("key", bits=30),),
        (Column("amount", bits=64), Column("cust", bits=24)),
    )
    schema_s = Schema((Column("key", bits=30),), (Column("qty", bits=40),))
    table_r = cluster.table_from_assignment(
        "R",
        schema_r,
        keys_r,
        rng.integers(0, NUM_NODES, len(keys_r)),
        columns={
            "amount": rng.integers(0, 1 << 20, len(keys_r)),
            "cust": rng.integers(0, 200, len(keys_r)),
        },
    )
    table_s = cluster.table_from_assignment(
        "S",
        schema_s,
        keys_s,
        rng.integers(0, NUM_NODES, len(keys_s)),
        columns={"qty": rng.integers(1, 100, len(keys_s))},
    )
    return table_r, table_s


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


def _ledger_fingerprint(ledger: TrafficLedger) -> dict:
    links = sorted((f"{s}->{d}", b) for (s, d), b in ledger.by_link.items() if b)
    link_digest = hashlib.sha256(
        "".join(f"{k}:{b!r};" for k, b in links).encode()
    ).hexdigest()
    return {
        "total": ledger.total_bytes,
        "local": ledger.local_bytes,
        "messages": ledger.message_count,
        "breakdown": {k: v for k, v in ledger.breakdown().items() if v},
        "links": link_digest,
    }


def _profile_fingerprint(profile) -> str:
    digest = hashlib.sha256()
    for step in profile.steps:
        digest.update(
            f"{step.name}|{step.kind}|{step.rate_class}|".encode()
        )
        digest.update(step.per_node_bytes.astype(np.float64).tobytes())
    return digest.hexdigest()


def _output_fingerprint(partitions: list[LocalPartition]) -> dict:
    """Row-for-row digest: node order, row order, dtypes all matter."""
    digest = hashlib.sha256()
    rows = 0
    for partition in partitions:
        rows += partition.num_rows
        digest.update(f"part|{partition.num_rows}|".encode())
        digest.update(str(partition.keys.dtype).encode())
        digest.update(np.ascontiguousarray(partition.keys).tobytes())
        for name in sorted(partition.columns):
            values = np.ascontiguousarray(partition.columns[name])
            digest.update(f"{name}|{values.dtype}|".encode())
            digest.update(values.tobytes())
    return {"rows": rows, "hash": digest.hexdigest()}


# ---------------------------------------------------------------------------
# Cases
# ---------------------------------------------------------------------------


def _join_case(factory, spec: JoinSpec | None = None):
    def run(cluster: Cluster) -> dict:
        table_r, table_s = _tables(cluster)
        result = factory().run(cluster, table_r, table_s, spec or JoinSpec())
        return {
            "traffic": _ledger_fingerprint(result.traffic),
            "profile": _profile_fingerprint(result.profile),
            "output": _output_fingerprint(result.output),
        }

    return run


def _mr_hash_case(cluster: Cluster) -> dict:
    table_r, table_s = _tables(cluster)
    result = mr_hash_join(cluster, table_r, table_s, JoinSpec())
    return {
        "traffic": _ledger_fingerprint(result.traffic),
        "profile": _profile_fingerprint(result.profile),
        "output": _output_fingerprint(result.outputs),
    }


def _mr_track_case(cluster: Cluster) -> dict:
    table_r, table_s = _tables(cluster)
    tracking, joined = mr_track_join(cluster, table_r, table_s, JoinSpec())
    combined = tracking.traffic.merged_with(joined.traffic)
    return {
        "traffic": _ledger_fingerprint(combined),
        "profile": _profile_fingerprint(joined.profile),
        "output": _output_fingerprint(joined.outputs),
    }


CASES = {
    "HJ": _join_case(GraceHashJoin),
    "BJ-R": _join_case(lambda: BroadcastJoin("R")),
    "BJ-S": _join_case(lambda: BroadcastJoin("S")),
    "2TJ-R": _join_case(lambda: TrackJoin2("RS")),
    "2TJ-S": _join_case(lambda: TrackJoin2("SR")),
    "3TJ": _join_case(TrackJoin3),
    "4TJ": _join_case(TrackJoin4),
    "4TJ-grouped": _join_case(
        TrackJoin4, JoinSpec(group_locations=True, delta_keys=True)
    ),
    "LMHJ": _join_case(LateMaterializationHashJoin),
    "TAHJ": _join_case(TrackingAwareHashJoin),
    "BF+HJ": _join_case(lambda: SemiJoinFilteredJoin(GraceHashJoin())),
    "BF+3TJ": _join_case(lambda: SemiJoinFilteredJoin(TrackJoin3())),
    "MR-HJ": _mr_hash_case,
    "MR-TJ": _mr_track_case,
}


def _run_case(name: str, workers: int) -> dict:
    cluster = Cluster(NUM_NODES, workers=workers)
    try:
        return CASES[name](cluster)
    finally:
        cluster.executor.close()


# ---------------------------------------------------------------------------
# Regeneration and tests
# ---------------------------------------------------------------------------


def _regenerate() -> dict:
    golden = {name: _run_case(name, workers=1) for name in CASES}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    return golden


if os.environ.get("REPRO_REGEN_GOLDEN") == "1":  # pragma: no cover - tooling
    _regenerate()


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        "golden fixture missing; run REPRO_REGEN_GOLDEN=1 pytest "
        "tests/test_exchange_golden.py against the reference implementation"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("name", sorted(CASES))
def test_operator_matches_golden(golden, name, workers):
    expected = golden[name]
    actual = _run_case(name, workers)
    assert actual["traffic"] == expected["traffic"], (
        f"{name} (workers={workers}): traffic ledger diverged from the "
        "pre-refactor reference"
    )
    assert actual["profile"] == expected["profile"], (
        f"{name} (workers={workers}): execution profile diverged"
    )
    assert actual["output"] == expected["output"], (
        f"{name} (workers={workers}): output rows diverged"
    )


def test_golden_covers_every_operator(golden):
    assert sorted(golden) == sorted(CASES)
