"""Tests for the rid-based hash joins of Section 3.2."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, GraceHashJoin, JoinSpec, TrackJoin2
from repro.cluster.network import MessageClass
from repro.joins.tracking_aware import (
    LateMaterializationHashJoin,
    TrackingAwareHashJoin,
    rid_width,
)

from conftest import assert_same_output, make_tables


class TestRidWidth:
    @pytest.mark.parametrize(
        "rows,expected", [(2, 1), (255, 1), (257, 2), (70_000, 3), (2**31, 4)]
    )
    def test_widths(self, rows, expected):
        assert rid_width(rows) == expected

    def test_tiny_tables(self):
        assert rid_width(0) == 1
        assert rid_width(1) == 1


class TestLateMaterialization:
    def test_matches_hash_join_output(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        reference = GraceHashJoin().run(small_cluster, table_r, table_s)
        late = LateMaterializationHashJoin().run(small_cluster, table_r, table_s)
        assert_same_output(reference, late)

    def test_fetch_traffic_scales_with_output(self, small_cluster):
        """LMHJ pays per output tuple, so amplified joins are expensive."""
        spec = JoinSpec()
        # Low amplification: unique keys.
        table_r, table_s = make_tables(small_cluster, np.arange(500), np.arange(500))
        low = LateMaterializationHashJoin().run(small_cluster, table_r, table_s, spec)
        # High amplification: same input sizes, 5x5 repeats per key.
        table_r2, table_s2 = make_tables(
            small_cluster, np.repeat(np.arange(100), 5), np.repeat(np.arange(100), 5)
        )
        high = LateMaterializationHashJoin().run(small_cluster, table_r2, table_s2, spec)
        assert high.output_rows == 2500
        assert high.network_bytes > low.network_bytes


class TestTrackingAware:
    def test_matches_hash_join_output(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        reference = GraceHashJoin().run(small_cluster, table_r, table_s)
        aware = TrackingAwareHashJoin().run(small_cluster, table_r, table_s)
        assert_same_output(reference, aware)

    def test_moves_only_narrow_payloads(self, small_cluster, small_tables):
        """Only the narrower side's payload crosses as tuples."""
        table_r, table_s = small_tables  # S payload is wider, so R moves
        result = TrackingAwareHashJoin().run(small_cluster, table_r, table_s)
        assert result.class_bytes(MessageClass.R_TUPLES) > 0.0
        assert result.class_bytes(MessageClass.S_TUPLES) == 0.0

    def test_cheaper_than_late_materialization(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        aware = TrackingAwareHashJoin().run(small_cluster, table_r, table_s)
        late = LateMaterializationHashJoin().run(small_cluster, table_r, table_s)
        assert aware.network_bytes < late.network_bytes

    def test_track_join_subsumes_tracking_aware(self, small_cluster):
        """Section 3.2's claim: 2TJ costs no more than the rid-based HJ.

        2TJ deduplicates keys during tracking and resends keys (which
        are narrower than rids), so on a unique-key join with wide
        payloads it must not lose.
        """
        table_r, table_s = make_tables(
            small_cluster,
            np.arange(2000),
            np.arange(2000),
            payload_bits_r=64,
            payload_bits_s=256,
            seed=4,
        )
        spec = JoinSpec()
        track = TrackJoin2("RS").run(small_cluster, table_r, table_s, spec)
        aware = TrackingAwareHashJoin().run(small_cluster, table_r, table_s, spec)
        assert_same_output(track, aware)
        assert track.network_bytes <= aware.network_bytes

    def test_empty_join(self, small_cluster):
        table_r, table_s = make_tables(
            small_cluster, np.arange(100), np.arange(500, 600)
        )
        result = TrackingAwareHashJoin().run(small_cluster, table_r, table_s)
        assert result.output_rows == 0
