"""Tests specific to the Grace hash join baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, GraceHashJoin, JoinSpec, Schema
from repro.cluster import MessageClass
from repro.storage import by_key_hash

from conftest import make_tables


class TestRepartitioning:
    def test_equal_keys_meet_at_one_node(self, small_cluster):
        """After repartitioning, every key lives at exactly hash(k) % N."""
        table_r, table_s = make_tables(
            small_cluster, np.arange(1000), np.arange(1000)
        )
        result = GraceHashJoin().run(small_cluster, table_r, table_s)
        assert result.output_rows == 1000
        # Each output row was produced at its key's hash node: outputs
        # grouped per node must partition the key space consistently.
        for node, partition in enumerate(result.output):
            if partition.num_rows == 0:
                continue
            expected = by_key_hash(partition.keys, small_cluster.num_nodes, seed=0)
            assert (expected == node).all()

    def test_prehashed_placement_is_free(self):
        """Tables already placed by the join hash move nothing."""
        cluster = Cluster(4)
        keys = np.arange(2000, dtype=np.int64)
        nodes = by_key_hash(keys, 4, seed=0)
        schema = Schema.with_widths(32, 64)
        table_r = cluster.table_from_assignment("R", schema, keys, nodes)
        table_s = cluster.table_from_assignment("S", schema, keys, nodes)
        result = GraceHashJoin().run(cluster, table_r, table_s, JoinSpec(hash_seed=0))
        assert result.network_bytes == 0.0
        assert result.traffic.local_bytes > 0.0

    def test_hash_seed_changes_destinations(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        a = GraceHashJoin().run(small_cluster, table_r, table_s, JoinSpec(hash_seed=0))
        b = GraceHashJoin().run(small_cluster, table_r, table_s, JoinSpec(hash_seed=9))
        # Same totals (uniform hashing) but different link usage.
        assert a.network_bytes == pytest.approx(b.network_bytes, rel=0.05)
        assert a.traffic.by_link != b.traffic.by_link

    def test_profile_step_names_match_table3(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        result = GraceHashJoin().run(small_cluster, table_r, table_s)
        names = [step.name for step in result.profile.steps]
        for expected in (
            "Hash partition R tuples",
            "Hash partition S tuples",
            "Transfer R tuples",
            "Transfer S tuples",
            "Sort received R tuples",
            "Sort received S tuples",
            "Final merge-join",
        ):
            assert expected in names, expected

    def test_traffic_ledger_matches_profile(self, small_cluster, small_tables):
        """The ledger's remote bytes equal the profile's NET step bytes."""
        table_r, table_s = small_tables
        result = GraceHashJoin().run(small_cluster, table_r, table_s)
        assert result.profile.total_network_bytes() == pytest.approx(
            result.network_bytes
        )

    def test_only_tuple_classes_used(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        result = GraceHashJoin().run(small_cluster, table_r, table_s)
        assert result.class_bytes(MessageClass.KEYS_COUNTS) == 0.0
        assert result.class_bytes(MessageClass.KEYS_NODES) == 0.0
        assert result.class_bytes(MessageClass.RIDS) == 0.0
