"""Tests for the balance-aware track join extension (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, JoinSpec, Schema, TrackJoin4
from repro.core.balance import BalanceAwareTrackJoin

from conftest import assert_same_output, make_tables


def skewed_locality_tables(cluster, num_keys=300, repeats=4, hot_node=0, seed=3):
    """Inputs whose locality concentrates on one node.

    Every key's S tuples live mostly on ``hot_node``, so traffic-optimal
    consolidation funnels everything there.
    """
    rng = np.random.default_rng(seed)
    keys = np.repeat(np.arange(num_keys, dtype=np.int64), repeats)
    schema = Schema.with_widths(32, 128)
    nodes_r = rng.integers(0, cluster.num_nodes, len(keys))
    nodes_s = np.where(
        rng.random(len(keys)) < 0.7,
        hot_node,
        rng.integers(0, cluster.num_nodes, len(keys)),
    )
    table_r = cluster.table_from_assignment("R", schema, keys, nodes_r)
    table_s = cluster.table_from_assignment("S", schema, keys, nodes_s)
    return table_r, table_s


class TestCorrectness:
    def test_same_output_as_four_phase(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        reference = TrackJoin4().run(small_cluster, table_r, table_s)
        balanced = BalanceAwareTrackJoin().run(small_cluster, table_r, table_s)
        assert_same_output(reference, balanced)

    def test_empty_input(self, small_cluster):
        table_r, table_s = make_tables(
            small_cluster, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        result = BalanceAwareTrackJoin().run(small_cluster, table_r, table_s)
        assert result.output_rows == 0

    def test_tolerance_preserves_output(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        reference = TrackJoin4().run(small_cluster, table_r, table_s)
        for tolerance in (0.0, 50.0, 1e9):
            result = BalanceAwareTrackJoin(tolerance=tolerance).run(
                small_cluster, table_r, table_s
            )
            assert_same_output(reference, result)


class TestTrafficAndBalance:
    def test_zero_tolerance_matches_optimal_traffic(self, small_cluster, small_tables):
        """With tolerance 0 only exact ties are re-decided, so total
        traffic equals the traffic-optimal 4-phase schedule."""
        table_r, table_s = small_tables
        spec = JoinSpec()
        optimal = TrackJoin4().run(small_cluster, table_r, table_s, spec)
        balanced = BalanceAwareTrackJoin(tolerance=0.0).run(
            small_cluster, table_r, table_s, spec
        )
        assert balanced.network_bytes == pytest.approx(optimal.network_bytes, rel=1e-6)

    def test_balancing_flattens_receive_skew(self):
        """On skewed locality, the balancer reduces the hottest node's
        received bytes relative to plain 4TJ."""
        cluster = Cluster(6)
        table_r, table_s = skewed_locality_tables(cluster)
        spec = JoinSpec()
        optimal = TrackJoin4().run(cluster, table_r, table_s, spec)
        balanced = BalanceAwareTrackJoin(tolerance=0.0).run(
            cluster, table_r, table_s, spec
        )
        assert_same_output(optimal, balanced)
        assert (
            balanced.node_balance()["receive_skew"]
            <= optimal.node_balance()["receive_skew"] + 1e-9
        )

    def test_traffic_bounded_by_tolerance(self):
        cluster = Cluster(6)
        table_r, table_s = skewed_locality_tables(cluster)
        spec = JoinSpec()
        optimal = TrackJoin4().run(cluster, table_r, table_s, spec)
        generous = BalanceAwareTrackJoin(tolerance=200.0).run(
            cluster, table_r, table_s, spec
        )
        # Bounded extra traffic: at most tolerance per distinct key.
        num_keys = len(np.union1d(table_r.all_keys(), table_s.all_keys()))
        assert generous.network_bytes <= optimal.network_bytes + 200.0 * num_keys

    def test_deterministic_given_seed(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        a = BalanceAwareTrackJoin(seed=5).run(small_cluster, table_r, table_s)
        b = BalanceAwareTrackJoin(seed=5).run(small_cluster, table_r, table_s)
        assert a.network_bytes == b.network_bytes
        assert a.traffic.by_link == b.traffic.by_link
