"""Bit-identity of the chunk-parallel kernels against their serial runs.

The fused kernels (``split_by``, ``hash_split``, index build /
``stable_sort_with_order``, ``join_indices``) decompose into per-chunk
subtasks when kernel workers are configured.  Chunk boundaries are a
pure function of the data size and the chunk-rows knob — never of the
worker count — and per-chunk results commit in chunk order, so every
output must equal the serial kernel bit for bit.  These properties pin
that contract across random inputs and chunk sizes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.joins.local import join_indices, local_join
from repro.parallel import chunks
from repro.storage.table import LocalPartition
from repro.util import stable_sort_with_order


def arrays_equal(a, b):
    __tracebackhide__ = True
    assert a.dtype == b.dtype, (a.dtype, b.dtype)
    assert np.array_equal(a, b)


def partitions_equal(a, b):
    __tracebackhide__ = True
    assert (a is None) == (b is None)
    if a is None:
        return
    arrays_equal(a.keys, b.keys)
    assert list(a.columns) == list(b.columns)
    for name in a.columns:
        arrays_equal(a.columns[name], b.columns[name])


def serial():
    """Kernel config that forces the single-chunk (reference) path."""
    return chunks.kernel_config(workers=1, chunk_rows=1 << 30)


@st.composite
def partition_case(draw):
    n = draw(st.integers(0, 400))
    key_bound = draw(st.sampled_from([1, 7, 100, 1 << 40]))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    keys = rng.integers(0, key_bound, size=n).astype(np.int64)
    part = LocalPartition(
        keys=keys,
        columns={
            "payload": rng.standard_normal(n),
            "rid": np.arange(n, dtype=np.int64),
        },
    )
    chunk_rows = draw(st.sampled_from([1, 3, 32, 129, 1 << 16]))
    workers = draw(st.integers(2, 4))
    num_buckets = draw(st.integers(1, 9))
    return part, chunk_rows, workers, num_buckets


class TestChunkBounds:
    def test_pure_function_of_size_and_knob(self):
        with chunks.kernel_config(workers=2, chunk_rows=100):
            two = chunks.chunk_bounds(250)
        with chunks.kernel_config(workers=7, chunk_rows=100):
            seven = chunks.chunk_bounds(250)
        arrays_equal(two, seven)
        assert list(two) == [0, 100, 200, 250]

    def test_degenerate_sizes(self):
        with chunks.kernel_config(workers=3, chunk_rows=64):
            assert list(chunks.chunk_bounds(0)) == [0]
            assert list(chunks.chunk_bounds(1)) == [0, 1]
            assert list(chunks.chunk_bounds(64)) == [0, 64]

    def test_bad_knobs_raise(self):
        with pytest.raises(ValidationError):
            chunks.set_kernel_chunk_rows(0)
        with pytest.raises(ValidationError):
            chunks.set_kernel_workers(0)


class TestChunkedSplitKernels:
    @settings(max_examples=25, deadline=None)
    @given(partition_case())
    def test_split_by_matches_serial(self, case):
        part, chunk_rows, workers, num_buckets = case
        destinations = np.mod(part.keys, num_buckets).astype(np.int64)
        with serial():
            reference = part.split_by(destinations, num_buckets)
        with chunks.kernel_config(workers=workers, chunk_rows=chunk_rows):
            chunked = part.split_by(destinations, num_buckets)
        assert len(reference) == len(chunked)
        for ref, got in zip(reference, chunked):
            partitions_equal(ref, got)

    @settings(max_examples=25, deadline=None)
    @given(partition_case())
    def test_hash_split_matches_serial(self, case):
        part, chunk_rows, workers, num_buckets = case
        with serial():
            part.invalidate_caches()
            reference = part.hash_split(num_buckets, seed=3)
        with chunks.kernel_config(workers=workers, chunk_rows=chunk_rows):
            part.invalidate_caches()
            chunked = part.hash_split(num_buckets, seed=3)
        for ref, got in zip(reference, chunked):
            partitions_equal(ref, got)

    @settings(max_examples=25, deadline=None)
    @given(partition_case())
    def test_index_build_matches_serial(self, case):
        part, chunk_rows, workers, _ = case
        with serial():
            part.invalidate_caches()
            reference = part.key_index()
        with chunks.kernel_config(workers=workers, chunk_rows=chunk_rows):
            part.invalidate_caches()
            chunked = part.key_index()
        arrays_equal(reference.order, chunked.order)
        arrays_equal(reference.sorted_keys, chunked.sorted_keys)

    @settings(max_examples=25, deadline=None)
    @given(partition_case())
    def test_stable_sort_with_order_matches_serial(self, case):
        part, chunk_rows, workers, _ = case
        with serial():
            ref_sorted, ref_order = stable_sort_with_order(part.keys)
        with chunks.kernel_config(workers=workers, chunk_rows=chunk_rows):
            got_sorted, got_order = stable_sort_with_order(part.keys)
        arrays_equal(ref_sorted, got_sorted)
        arrays_equal(ref_order, got_order)


@st.composite
def join_case(draw):
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    n_left = draw(st.integers(0, 300))
    n_right = draw(st.integers(0, 300))
    # Mix of dense / sparse key spaces picks between the direct-address
    # and sorted probe paths; duplicate-free right picks the unique path.
    key_bound = draw(st.sampled_from([5, 200, 1 << 40]))
    keys_left = rng.integers(0, key_bound, size=n_left).astype(np.int64)
    if draw(st.booleans()) and n_right <= key_bound:
        if key_bound <= 1 << 10:
            keys_right = rng.permutation(int(key_bound))[:n_right].astype(np.int64)
        else:
            keys_right = np.unique(
                rng.integers(0, key_bound, size=4 * n_right + 4)
            )[:n_right].astype(np.int64)
        keys_right = rng.permutation(keys_right)
    else:
        keys_right = rng.integers(0, key_bound, size=n_right).astype(np.int64)
    chunk_rows = draw(st.sampled_from([1, 17, 64, 1 << 16]))
    workers = draw(st.integers(2, 4))
    return keys_left, keys_right, chunk_rows, workers


class TestChunkedJoinIndices:
    @settings(max_examples=40, deadline=None)
    @given(join_case())
    def test_join_indices_matches_serial(self, case):
        keys_left, keys_right, chunk_rows, workers = case
        with serial():
            ref_left, ref_right = join_indices(keys_left, keys_right)
        with chunks.kernel_config(workers=workers, chunk_rows=chunk_rows):
            got_left, got_right = join_indices(keys_left, keys_right)
        arrays_equal(ref_left, got_left)
        arrays_equal(ref_right, got_right)

    @settings(max_examples=25, deadline=None)
    @given(join_case())
    def test_join_indices_with_index_matches_serial(self, case):
        keys_left, keys_right, chunk_rows, workers = case
        part = LocalPartition(keys=keys_right, columns={})
        with serial():
            ref = join_indices(keys_left, keys_right)
        with chunks.kernel_config(workers=workers, chunk_rows=chunk_rows):
            part.invalidate_caches()
            via_index = join_indices(
                keys_left,
                keys_right,
                right_index=part.key_index() if len(keys_right) else None,
            )
            part.invalidate_caches()
            via_partition = join_indices(
                keys_left,
                keys_right,
                right_partition=part if len(keys_right) else None,
            )
        for got in (via_index, via_partition):
            arrays_equal(ref[0], got[0])
            arrays_equal(ref[1], got[1])

    @settings(max_examples=15, deadline=None)
    @given(join_case())
    def test_local_join_matches_serial(self, case):
        keys_left, keys_right, chunk_rows, workers = case
        rng = np.random.default_rng(7)
        left = LocalPartition(
            keys=keys_left, columns={"a": rng.standard_normal(len(keys_left))}
        )
        right = LocalPartition(
            keys=keys_right, columns={"b": rng.standard_normal(len(keys_right))}
        )
        with serial():
            left.invalidate_caches(), right.invalidate_caches()
            reference = local_join(left, right)
        with chunks.kernel_config(workers=workers, chunk_rows=chunk_rows):
            left.invalidate_caches(), right.invalidate_caches()
            chunked = local_join(left, right)
        partitions_equal(reference, chunked)
