"""Tests for Bloom-filtered semi-join reduction (Section 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, GraceHashJoin, JoinSpec, TrackJoin2, TrackJoin4
from repro.cluster.network import MessageClass
from repro.joins import SemiJoinFilteredJoin

from conftest import assert_same_output, make_tables


@pytest.fixture
def selective_tables(small_cluster):
    """Inputs where only ~10% of each table has matches."""
    table_r, table_s = make_tables(
        small_cluster,
        np.arange(0, 5000),
        np.arange(4500, 9500),
        seed=3,
    )
    return table_r, table_s


class TestCorrectness:
    def test_filtered_hash_join_output(self, small_cluster, selective_tables):
        table_r, table_s = selective_tables
        plain = GraceHashJoin().run(small_cluster, table_r, table_s)
        filtered = SemiJoinFilteredJoin(GraceHashJoin()).run(
            small_cluster, table_r, table_s
        )
        assert_same_output(plain, filtered)

    def test_filtered_track_join_output(self, small_cluster, selective_tables):
        table_r, table_s = selective_tables
        plain = TrackJoin4().run(small_cluster, table_r, table_s)
        filtered = SemiJoinFilteredJoin(TrackJoin4()).run(
            small_cluster, table_r, table_s
        )
        assert_same_output(plain, filtered)

    def test_name_reflects_inner(self):
        assert SemiJoinFilteredJoin(GraceHashJoin()).name == "BF+HJ"
        assert SemiJoinFilteredJoin(TrackJoin2("RS")).name == "BF+2TJ-R"


class TestTraffic:
    def test_filters_are_broadcast(self, small_cluster, selective_tables):
        table_r, table_s = selective_tables
        result = SemiJoinFilteredJoin(GraceHashJoin()).run(
            small_cluster, table_r, table_s
        )
        assert result.class_bytes(MessageClass.FILTER) > 0.0

    def test_filtering_pays_off_on_selective_hash_join(
        self, small_cluster, selective_tables
    ):
        """When few tuples match, pruning before hashing saves traffic."""
        table_r, table_s = selective_tables
        plain = GraceHashJoin().run(small_cluster, table_r, table_s)
        filtered = SemiJoinFilteredJoin(GraceHashJoin()).run(
            small_cluster, table_r, table_s
        )
        assert filtered.network_bytes < plain.network_bytes

    def test_track_join_filters_during_tracking(self, small_cluster, selective_tables):
        """Track join already discards unmatched keys, so Bloom filters
        add the broadcast cost without reducing payload traffic much —
        the paper's argument that track join subsumes semi-join
        filtering."""
        table_r, table_s = selective_tables
        spec = JoinSpec()
        plain = TrackJoin2("RS").run(small_cluster, table_r, table_s, spec)
        filtered = SemiJoinFilteredJoin(TrackJoin2("RS")).run(
            small_cluster, table_r, table_s, spec
        )
        payload = MessageClass.R_TUPLES
        # Payload transfers were already minimal without the filter.
        assert plain.class_bytes(payload) == pytest.approx(
            filtered.class_bytes(payload), rel=0.05
        )

    def test_false_positives_survive_filtering_but_not_join(
        self, small_cluster, selective_tables
    ):
        table_r, table_s = selective_tables
        loose = SemiJoinFilteredJoin(GraceHashJoin(), false_positive_rate=0.2)
        tight = SemiJoinFilteredJoin(GraceHashJoin(), false_positive_rate=0.001)
        loose_result = loose.run(small_cluster, table_r, table_s)
        tight_result = tight.run(small_cluster, table_r, table_s)
        assert loose_result.output_rows == tight_result.output_rows
        # Looser filters let more non-matching tuples cross as payloads.
        loose_payload = loose_result.class_bytes(
            MessageClass.R_TUPLES
        ) + loose_result.class_bytes(MessageClass.S_TUPLES)
        tight_payload = tight_result.class_bytes(
            MessageClass.R_TUPLES
        ) + tight_result.class_bytes(MessageClass.S_TUPLES)
        assert loose_payload >= tight_payload
        # But tighter filters cost more broadcast bytes.
        assert tight_result.class_bytes(MessageClass.FILTER) > loose_result.class_bytes(
            MessageClass.FILTER
        )
