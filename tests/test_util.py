"""Unit tests for hashing and segmented array utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import (
    hash_partition,
    mix64,
    segment_boundaries,
    segment_count,
    segment_ids,
    segment_max_position,
    segment_sum,
    segmented_cartesian,
)


class TestMix64:
    def test_deterministic(self):
        values = np.arange(100, dtype=np.int64)
        assert np.array_equal(mix64(values), mix64(values))

    def test_seed_changes_stream(self):
        values = np.arange(100, dtype=np.int64)
        assert not np.array_equal(mix64(values, seed=0), mix64(values, seed=1))

    def test_input_not_mutated(self):
        values = np.arange(10, dtype=np.int64)
        mix64(values)
        assert np.array_equal(values, np.arange(10))

    def test_no_trivial_collisions(self):
        values = np.arange(10_000, dtype=np.int64)
        assert len(np.unique(mix64(values))) == 10_000


class TestHashPartition:
    def test_range(self):
        nodes = hash_partition(np.arange(1000, dtype=np.int64), 7)
        assert nodes.min() >= 0 and nodes.max() < 7

    def test_consecutive_keys_spread(self):
        """Sequential keys should not all land on key % N."""
        keys = np.arange(16_000, dtype=np.int64)
        nodes = hash_partition(keys, 16)
        counts = np.bincount(nodes, minlength=16)
        # Roughly uniform: no node has more than 2x the average.
        assert counts.max() < 2 * counts.mean()
        assert not np.array_equal(nodes, keys % 16)

    def test_single_node(self):
        assert np.all(hash_partition(np.arange(10, dtype=np.int64), 1) == 0)

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            hash_partition(np.arange(3, dtype=np.int64), 0)


class TestSegments:
    def test_boundaries_basic(self):
        keys = np.array([1, 1, 2, 2, 2, 5])
        assert np.array_equal(segment_boundaries(keys), [0, 2, 5])

    def test_boundaries_empty(self):
        assert len(segment_boundaries(np.array([], dtype=np.int64))) == 0

    def test_boundaries_all_same(self):
        assert np.array_equal(segment_boundaries(np.zeros(5, dtype=np.int64)), [0])

    def test_sum_and_count(self):
        keys = np.array([1, 1, 2, 5, 5, 5])
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        starts = segment_boundaries(keys)
        assert np.array_equal(segment_sum(values, starts), [3.0, 3.0, 15.0])
        assert np.array_equal(segment_count(starts, len(keys)), [2, 1, 3])

    def test_ids(self):
        keys = np.array([3, 3, 7, 9, 9])
        starts = segment_boundaries(keys)
        assert np.array_equal(segment_ids(starts, len(keys)), [0, 0, 1, 2, 2])

    def test_max_position_first_tie(self):
        values = np.array([1.0, 5.0, 5.0, 2.0, 2.0])
        starts = np.array([0, 3])
        positions = segment_max_position(values, starts, len(values))
        assert np.array_equal(positions, [1, 3])

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.floats(0, 100)), min_size=1, max_size=50
        )
    )
    def test_segment_sum_matches_python(self, pairs):
        pairs.sort(key=lambda p: p[0])
        keys = np.array([p[0] for p in pairs], dtype=np.int64)
        values = np.array([p[1] for p in pairs])
        starts = segment_boundaries(keys)
        sums = segment_sum(values, starts)
        expected = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0.0) + v
        assert np.allclose(sums, [expected[k] for k in sorted(expected)])


class TestSegmentedCartesian:
    def test_basic(self):
        a_seg = np.array([0, 0, 1])
        b_seg = np.array([0, 1, 1])
        ia, ib = segmented_cartesian(a_seg, b_seg)
        pairs = set(zip(ia.tolist(), ib.tolist()))
        assert pairs == {(0, 0), (1, 0), (2, 1), (2, 2)}

    def test_empty_inputs(self):
        ia, ib = segmented_cartesian(np.array([], dtype=np.int64), np.array([0]))
        assert len(ia) == 0 and len(ib) == 0

    def test_disjoint_segments(self):
        ia, ib = segmented_cartesian(np.array([0, 0]), np.array([1, 1]))
        assert len(ia) == 0

    @given(
        st.lists(st.integers(0, 4), min_size=0, max_size=12),
        st.lists(st.integers(0, 4), min_size=0, max_size=12),
    )
    def test_matches_bruteforce(self, a_raw, b_raw):
        a_seg = np.array(sorted(a_raw), dtype=np.int64)
        b_seg = np.array(sorted(b_raw), dtype=np.int64)
        ia, ib = segmented_cartesian(a_seg, b_seg)
        got = sorted(zip(ia.tolist(), ib.tolist()))
        expected = sorted(
            (i, j)
            for i in range(len(a_seg))
            for j in range(len(b_seg))
            if a_seg[i] == b_seg[j]
        )
        assert got == expected


class TestCompositeKeys:
    def test_pack_unpack_roundtrip(self):
        from repro.util import pack_composite_keys, unpack_composite_keys

        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([100, 200, 300], dtype=np.int64)
        packed = pack_composite_keys([a, b], [8, 16])
        ua, ub = unpack_composite_keys(packed, [8, 16])
        assert np.array_equal(ua, a)
        assert np.array_equal(ub, b)

    def test_injective(self):
        from repro.util import pack_composite_keys

        a = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        packed = pack_composite_keys([a[:, 0], a[:, 1]], [4, 4])
        assert len(np.unique(packed)) == 4

    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.integers(0, 2**20 - 1)),
            min_size=1,
            max_size=50,
        )
    )
    def test_property_roundtrip(self, pairs):
        from repro.util import pack_composite_keys, unpack_composite_keys

        a = np.array([p[0] for p in pairs], dtype=np.int64)
        b = np.array([p[1] for p in pairs], dtype=np.int64)
        packed = pack_composite_keys([a, b], [8, 20])
        ua, ub = unpack_composite_keys(packed, [8, 20])
        assert np.array_equal(ua, a) and np.array_equal(ub, b)

    def test_overflow_rejected(self):
        from repro.util import pack_composite_keys

        with pytest.raises(ValueError):
            pack_composite_keys([np.array([256])], [8])
        with pytest.raises(ValueError):
            pack_composite_keys([np.array([1])] * 8, [10] * 8)
        with pytest.raises(ValueError):
            pack_composite_keys([], [])

    def test_join_on_composite_keys(self):
        """A two-column equi-join via packed keys."""
        from repro import Cluster, GraceHashJoin, TrackJoin4
        from repro.util import pack_composite_keys
        from conftest import make_tables, assert_same_output

        rng = np.random.default_rng(5)
        col_a = rng.integers(0, 16, 3000)
        col_b = rng.integers(0, 64, 3000)
        keys = pack_composite_keys([col_a, col_b], [4, 6])
        cluster = Cluster(4)
        table_r, table_s = make_tables(cluster, keys, keys[::-1].copy(), seed=1)
        hashed = GraceHashJoin().run(cluster, table_r, table_s)
        tracked = TrackJoin4().run(cluster, table_r, table_s)
        assert_same_output(hashed, tracked)
