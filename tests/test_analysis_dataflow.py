"""Tests for the whole-package phase-safety dataflow analyzer.

Each REP007–REP011 rule gets a true-positive fixture package (must
fire) and a near-miss counterpart (must stay silent); the runtime race
tracker, statement-span noqa suppression, the SARIF reporter, the
baseline workflow, and the lint result cache are covered alongside, and
the repository source itself is scanned as the closing integration
check.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.analysis import (
    RaceTracker,
    all_dataflow_rules,
    lint_paths,
    lint_source,
    race_tracker,
    sanitized,
    write_baseline,
)
from repro.analysis.sanitizer import shared_key, track_shared
from repro.errors import RaceError

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def lint_package(tmp_path: Path, sources: dict[str, str], **kwargs):
    """Write ``sources`` as a package under tmp_path and lint it."""
    package = tmp_path / "pkg"
    package.mkdir(exist_ok=True)
    (package / "__init__.py").write_text("")
    for name, source in sources.items():
        (package / name).write_text(source)
    return lint_paths([package], dataflow=True, **kwargs)


def codes_in(report, code: str) -> list[str]:
    return [d.code for d in report.diagnostics if d.code == code]


class TestRep007UnsynchronizedGlobalMutation:
    def test_task_mutation_of_global_dict_fires(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "work.py": (
                    "COUNTS = {}\n"
                    "def work(node):\n"
                    "    COUNTS[node] = node\n"
                    "def launch(net):\n"
                    "    run_phase(net, tasks=[work])\n"
                )
            },
        )
        assert codes_in(report, "REP007") == ["REP007"]
        finding = next(d for d in report.diagnostics if d.code == "REP007")
        assert "phase" in finding.message

    def test_global_declared_augassign_fires(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "work.py": (
                    "TOTAL = 0\n"
                    "def work(node):\n"
                    "    global TOTAL\n"
                    "    TOTAL += node\n"
                    "def launch(executor):\n"
                    "    executor.map(work, range(4))\n"
                )
            },
        )
        assert codes_in(report, "REP007") == ["REP007"]

    def test_mutation_under_module_lock_is_clean(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "work.py": (
                    "import threading\n"
                    "COUNTS = {}\n"
                    "LOCK = threading.Lock()\n"
                    "def work(node):\n"
                    "    with LOCK:\n"
                    "        COUNTS[node] = node\n"
                    "def launch(net):\n"
                    "    run_phase(net, tasks=[work])\n"
                )
            },
        )
        assert codes_in(report, "REP007") == []

    def test_thread_local_state_is_clean(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "work.py": (
                    "import threading\n"
                    "TLS = threading.local()\n"
                    "def work(node):\n"
                    "    TLS.cache[node] = node\n"
                    "def launch(net):\n"
                    "    run_phase(net, tasks=[work])\n"
                )
            },
        )
        assert codes_in(report, "REP007") == []

    def test_same_mutation_outside_task_context_is_clean(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "work.py": (
                    "COUNTS = {}\n"
                    "def work(node):\n"
                    "    COUNTS[node] = node\n"
                )
            },
        )
        assert codes_in(report, "REP007") == []


class TestRep008ScratchKeyNamespace:
    def test_bare_literal_key_fires(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "op.py": (
                    "class Build:\n"
                    "    def run(self, ctx):\n"
                    "        ctx.scratch['build'] = 1\n"
                )
            },
        )
        assert codes_in(report, "REP008") == ["REP008"]
        finding = next(d for d in report.diagnostics if d.code == "REP008")
        assert "not namespaced" in finding.message

    def test_colliding_namespaced_key_fires_per_site(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "ops.py": (
                    "class Build:\n"
                    "    def run(self, ctx):\n"
                    "        ctx.scratch['probe:state'] = 1\n"
                    "class Probe:\n"
                    "    def run(self, ctx):\n"
                    "        return ctx.scratch.get('probe:state')\n"
                )
            },
        )
        assert codes_in(report, "REP008") == ["REP008", "REP008"]
        finding = next(d for d in report.diagnostics if d.code == "REP008")
        assert "Build" in finding.message and "Probe" in finding.message

    def test_namespaced_single_owner_key_is_clean(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "op.py": (
                    "class Build:\n"
                    "    def run(self, ctx):\n"
                    "        ctx.scratch['build:rows'] = 1\n"
                    "        return ctx.scratch.get('build:rows')\n"
                )
            },
        )
        assert codes_in(report, "REP008") == []

    def test_dynamic_identity_key_is_clean(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "op.py": (
                    "class Build:\n"
                    "    def run(self, ctx):\n"
                    "        ctx.scratch[('build', self.index)] = 1\n"
                )
            },
        )
        assert codes_in(report, "REP008") == []


class TestRep009LockAsymmetry:
    CACHE_HEADER = (
        "import threading\n"
        "class Cache:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._entries = {}\n"
        "        self.hits = 0\n"
    )

    def test_unlocked_container_mutation_fires(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "cache.py": self.CACHE_HEADER
                + (
                    "    def put(self, key, value):\n"
                    "        with self._lock:\n"
                    "            self._entries[key] = value\n"
                    "    def drop(self, key):\n"
                    "        del self._entries[key]\n"
                )
            },
        )
        assert codes_in(report, "REP009") == ["REP009"]
        finding = next(d for d in report.diagnostics if d.code == "REP009")
        assert "Cache.drop" in finding.message

    def test_unlocked_read_of_guarded_attr_fires(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "cache.py": self.CACHE_HEADER
                + (
                    "    def record(self):\n"
                    "        with self._lock:\n"
                    "            self.hits += 1\n"
                    "    def stats(self):\n"
                    "        return {'hits': self.hits}\n"
                )
            },
        )
        assert codes_in(report, "REP009") == ["REP009"]
        finding = next(d for d in report.diagnostics if d.code == "REP009")
        assert "torn or stale" in finding.message

    def test_fully_locked_class_is_clean(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "cache.py": self.CACHE_HEADER
                + (
                    "    def put(self, key, value):\n"
                    "        with self._lock:\n"
                    "            self._entries[key] = value\n"
                    "            self.hits += 1\n"
                    "    def stats(self):\n"
                    "        with self._lock:\n"
                    "            return {'hits': self.hits}\n"
                )
            },
        )
        assert codes_in(report, "REP009") == []

    def test_init_is_exempt(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "cache.py": self.CACHE_HEADER
                + (
                    "    def put(self, key, value):\n"
                    "        with self._lock:\n"
                    "            self._entries[key] = value\n"
                )
            },
        )
        assert codes_in(report, "REP009") == []

    def test_lockless_class_is_out_of_scope(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "bag.py": (
                    "class Bag:\n"
                    "    def __init__(self):\n"
                    "        self._items = {}\n"
                    "    def put(self, key, value):\n"
                    "        self._items[key] = value\n"
                )
            },
        )
        assert codes_in(report, "REP009") == []


class TestRep010DriverBlockingCall:
    SERVICE_HEADER = (
        "import threading\n"
        "class Service:\n"
        "    def __init__(self):\n"
        "        self._thread = threading.Thread(target=self._drive)\n"
        "    def _drive(self):\n"
        "        while True:\n"
        "            item = self._queue.get()\n"
        "            self._handle(item)\n"
    )

    def test_unbounded_wait_on_driver_path_fires(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "service.py": self.SERVICE_HEADER
                + (
                    "    def _handle(self, item):\n"
                    "        self._ready.wait()\n"
                )
            },
        )
        assert codes_in(report, "REP010") == ["REP010"]
        finding = next(d for d in report.diagnostics if d.code == "REP010")
        assert "deadline" in finding.message
        # Severity lives on the rule (rendered as the SARIF level).
        assert all_dataflow_rules()["REP010"].severity == "warning"

    def test_time_sleep_on_driver_path_fires(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "service.py": self.SERVICE_HEADER
                + (
                    "    def _handle(self, item):\n"
                    "        import time\n"
                    "        time.sleep(0.5)\n"
                )
            },
        )
        assert codes_in(report, "REP010") == ["REP010"]

    def test_wait_with_timeout_is_clean(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "service.py": self.SERVICE_HEADER
                + (
                    "    def _handle(self, item):\n"
                    "        self._ready.wait(timeout=1.0)\n"
                )
            },
        )
        assert codes_in(report, "REP010") == []

    def test_driver_seed_idle_wait_is_exempt(self, tmp_path):
        # _drive's own queue.get() is the designed between-queries idle
        # wait; only functions it calls into are deadline-bound.
        report = lint_package(
            tmp_path,
            {
                "service.py": self.SERVICE_HEADER
                + (
                    "    def _handle(self, item):\n"
                    "        return item\n"
                )
            },
        )
        assert codes_in(report, "REP010") == []


class TestRep011SharedViewWriteAfterHandoff:
    def test_mutation_after_handoff_fires(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "fan.py": (
                    "def fanout(data, fill):\n"
                    "    view = data.view()\n"
                    "    run_chunks(fill, [view])\n"
                    "    view[0] = 1\n"
                )
            },
        )
        assert codes_in(report, "REP011") == ["REP011"]
        finding = next(d for d in report.diagnostics if d.code == "REP011")
        assert "handed to a task" in finding.message

    def test_shared_array_inplace_method_fires(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "fan.py": (
                    "def fanout(executor, fill, shape):\n"
                    "    buffer = SharedArray(shape)\n"
                    "    executor.submit(fill, buffer)\n"
                    "    buffer.fill(0)\n"
                )
            },
        )
        assert codes_in(report, "REP011") == ["REP011"]

    def test_mutation_before_handoff_is_clean(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "fan.py": (
                    "def fanout(data, fill):\n"
                    "    view = data.view()\n"
                    "    view[0] = 1\n"
                    "    run_chunks(fill, [view])\n"
                )
            },
        )
        assert codes_in(report, "REP011") == []

    def test_rebind_after_handoff_is_clean(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "fan.py": (
                    "def fanout(data, fill):\n"
                    "    view = data.view()\n"
                    "    run_chunks(fill, [view])\n"
                    "    view = data.copy()\n"
                    "    view[0] = 1\n"
                )
            },
        )
        assert codes_in(report, "REP011") == []


class TestRaceTracker:
    def test_cross_thread_unlocked_write_raises(self):
        with sanitized():
            key = shared_key("test.counter")
            worker = threading.Thread(
                target=track_shared, args=(key,), kwargs={"write": True}
            )
            worker.start()
            worker.join()
            with pytest.raises(RaceError) as excinfo:
                track_shared(key, write=True)
            assert excinfo.value.kind == "write/write"

    def test_common_lock_makes_access_safe(self):
        lock = threading.Lock()
        with sanitized():
            key = shared_key("test.counter")
            worker = threading.Thread(
                target=track_shared,
                args=(key,),
                kwargs={"write": True, "locks": (lock,)},
            )
            worker.start()
            worker.join()
            track_shared(key, write=True, locks=(lock,))  # must not raise

    def test_cross_thread_reads_never_conflict(self):
        with sanitized():
            key = shared_key("test.counter")
            worker = threading.Thread(
                target=track_shared, args=(key,), kwargs={"write": False}
            )
            worker.start()
            worker.join()
            track_shared(key, write=False)  # read/read is not a race

    def test_unlocked_read_of_locked_write_raises(self):
        lock = threading.Lock()
        with sanitized():
            key = shared_key("test.counter")
            worker = threading.Thread(
                target=track_shared,
                args=(key,),
                kwargs={"write": True, "locks": (lock,)},
            )
            worker.start()
            worker.join()
            with pytest.raises(RaceError) as excinfo:
                track_shared(key, write=False)
            assert excinfo.value.kind == "read/write"

    def test_noop_when_tracker_absent(self, monkeypatch):
        # The tier-1 suite runs session-sanitized (conftest), so simulate
        # the disabled state directly: track_shared must be a pure no-op.
        from repro.analysis import sanitizer as sanitizer_module

        monkeypatch.setattr(sanitizer_module, "_race_tracker", None)
        track_shared("test.counter", write=True)  # must not record or raise
        assert race_tracker() is None

    def test_tracker_records_keys_while_sanitized(self):
        with sanitized():
            tracker = race_tracker()
            assert isinstance(tracker, RaceTracker)
            key = shared_key("test.visible")
            track_shared(key, write=True)
            assert key in tracker.keys()

    def test_shared_keys_never_repeat(self):
        keys = {shared_key("test.mint") for _ in range(64)}
        assert len(keys) == 64


class TestStatementSpanSuppression:
    def test_trailing_line_noqa_suppresses_multiline_statement(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(\n"
            ")  # repro: noqa[REP001]\n"
        )
        diagnostics, suppressed = lint_source(source, "snippet.py")
        assert diagnostics == []
        assert suppressed == 1

    def test_decorator_line_noqa_covers_function_header(self):
        source = (
            "import numpy as np\n"
            "import functools\n"
            "@functools.cache  # repro: noqa[REP001]\n"
            "def draw(rng=np.random.default_rng()):\n"
            "    return rng\n"
        )
        diagnostics, suppressed = lint_source(source, "snippet.py")
        assert diagnostics == []
        assert suppressed == 1

    def test_noqa_inside_body_does_not_blanket_siblings(self):
        source = (
            "import numpy as np\n"
            "def draw():\n"
            "    x = 1  # repro: noqa[REP001]\n"
            "    return np.random.default_rng()\n"
        )
        diagnostics, _ = lint_source(source, "snippet.py")
        assert [d.code for d in diagnostics] == ["REP001"]

    def test_multi_code_list_on_spanning_statement(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(\n"
            ")  # repro: noqa[REP001, REP005]\n"
        )
        diagnostics, suppressed = lint_source(source, "snippet.py")
        assert diagnostics == []
        assert suppressed == 1


class TestSarifReporter:
    def test_sarif_shape_and_severity(self, tmp_path):
        report = lint_package(
            tmp_path,
            {
                "service.py": TestRep010DriverBlockingCall.SERVICE_HEADER
                + (
                    "    def _handle(self, item):\n"
                    "        self._ready.wait()\n"
                )
            },
        )
        sarif = json.loads(report.render_sarif())
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"REP007", "REP008", "REP009", "REP010", "REP011"} <= rule_ids
        results = run["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "REP010"
        assert results[0]["level"] == "warning"
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("service.py")

    def test_sarif_cli(self, tmp_path, capsys):
        package = tmp_path / "clean"
        package.mkdir()
        (package / "mod.py").write_text("x = 1\n")
        assert (
            main(["lint", str(package), "--dataflow", "--format", "sarif"]) == 0
        )
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["runs"][0]["results"] == []


class TestBaseline:
    VIOLATION = {
        "work.py": (
            "COUNTS = {}\n"
            "def work(node):\n"
            "    COUNTS[node] = node\n"
            "def launch(net):\n"
            "    run_phase(net, tasks=[work])\n"
        )
    }

    def test_baseline_round_trip_absorbs_findings(self, tmp_path):
        report = lint_package(tmp_path, self.VIOLATION)
        assert not report.clean
        baseline_path = tmp_path / "baseline.json"
        write_baseline(report, baseline_path)
        absorbed = lint_package(tmp_path, self.VIOLATION, baseline=baseline_path)
        assert absorbed.clean
        assert absorbed.baselined == 1

    def test_new_findings_still_fail_under_baseline(self, tmp_path):
        report = lint_package(tmp_path, self.VIOLATION)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(report, baseline_path)
        grown = dict(self.VIOLATION)
        grown["op.py"] = (
            "class Build:\n"
            "    def run(self, ctx):\n"
            "        ctx.scratch['build'] = 1\n"
        )
        after = lint_package(tmp_path, grown, baseline=baseline_path)
        assert not after.clean
        assert [d.code for d in after.diagnostics] == ["REP008"]
        assert after.baselined == 1

    def test_write_baseline_cli(self, tmp_path, capsys):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "work.py").write_text(self.VIOLATION["work.py"])
        baseline_path = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(package),
                    "--dataflow",
                    "--write-baseline",
                    str(baseline_path),
                ]
            )
            == 0
        )
        assert "1 finding(s)" in capsys.readouterr().out
        assert (
            main(
                ["lint", str(package), "--dataflow", "--baseline", str(baseline_path)]
            )
            == 0
        )


class TestLintCache:
    def test_cache_round_trip_and_invalidation(self, tmp_path):
        cache_dir = tmp_path / "cache"
        sources = {"mod.py": "import numpy as np\nrng = np.random.default_rng()\n"}
        first = lint_package(tmp_path, sources, cache_dir=cache_dir)
        assert [d.code for d in first.diagnostics] == ["REP001"]
        assert (cache_dir / "cache.json").exists()
        second = lint_package(tmp_path, sources, cache_dir=cache_dir)
        assert [d.code for d in second.diagnostics] == ["REP001"]
        assert second.summary()["dataflow"]["modules"] == first.summary()[
            "dataflow"
        ]["modules"]
        # A content change must invalidate: the key includes size/mtime.
        fixed = {"mod.py": "import numpy as np\nrng = np.random.default_rng(7)\n"}
        third = lint_package(tmp_path, fixed, cache_dir=cache_dir)
        assert third.diagnostics == []

    def test_no_cache_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "mod.py").write_text("x = 1\n")
        assert main(["lint", str(package), "--dataflow", "--no-cache"]) == 0
        capsys.readouterr()
        assert not (tmp_path / ".repro-lint-cache").exists()

    def test_cli_cache_default_writes_cache_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "mod.py").write_text("x = 1\n")
        assert main(["lint", str(package), "--dataflow"]) == 0
        capsys.readouterr()
        assert (tmp_path / ".repro-lint-cache" / "cache.json").exists()


class TestRepoSelfScan:
    def test_package_is_dataflow_clean(self):
        report = lint_paths([REPO_SRC], dataflow=True)
        assert [d.render() for d in report.diagnostics] == []

    def test_summary_reports_dataflow_stats(self):
        summary = lint_paths([REPO_SRC], dataflow=True).summary()
        assert summary["dataflow_rules"] == [
            "REP007",
            "REP008",
            "REP009",
            "REP010",
            "REP011",
        ]
        stats = summary["dataflow"]
        assert stats["modules"] > 50
        assert stats["functions"] > 500
        assert stats["call_edges"] > 1000
        assert stats["task_functions"] > 0
        assert stats["wall_seconds"] >= 0
