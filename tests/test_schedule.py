"""Tests for per-key schedule generation: paper examples, optimality
(Theorems 1-2) against brute force, and vectorized/scalar agreement."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schedule import (
    generate_schedules,
    migrate_and_broadcast,
    optimal_schedule,
    selective_broadcast_cost,
)
from repro.core.tracking import TrackingTable
from repro.errors import ScheduleError
from repro.util import segment_boundaries


class TestPaperExamples:
    """The worked examples of Figures 1 and 2 (M = 0)."""

    R1 = {0: 2.0, 2: 4.0}
    S1 = {1: 3.0, 3: 1.0}

    def test_figure1_two_phase(self):
        assert selective_broadcast_cost(self.R1, self.S1, scheduler_node=4) == 12

    def test_figure1_three_phase(self):
        assert selective_broadcast_cost(self.S1, self.R1, scheduler_node=4) == 8

    def test_figure1_four_phase(self):
        schedule = optimal_schedule(self.R1, self.S1, scheduler_node=4)
        assert schedule.plan.cost == 6
        assert schedule.direction == "SR"
        # R tuples from node 0 consolidate onto node 2 before S broadcasts.
        assert schedule.plan.migrating_nodes == (0,)
        assert schedule.plan.destination == 2

    R2 = {1: 4.0, 2: 8.0, 3: 9.0, 4: 6.0}
    S2 = {1: 2.0, 2: 5.0, 3: 3.0, 4: 1.0}

    def test_figure2_initial_broadcast(self):
        assert selective_broadcast_cost(self.S2, self.R2, scheduler_node=0) == 33

    def test_figure2_migrations(self):
        plan = migrate_and_broadcast(self.S2, self.R2, scheduler_node=0)
        assert plan.cost == 24
        assert plan.migration_cost == 10  # |R1| + |R4| = 4 + 6
        assert plan.migrating_nodes == (1, 4)
        assert plan.destination == 2  # forced-stay node with max |R|+|S|

    def test_figure2_node3_rejected(self):
        """Migrating node 3 (R=9) would raise the cost (13+16 vs 4+24)."""
        plan = migrate_and_broadcast(self.S2, self.R2, scheduler_node=0)
        assert 3 not in plan.migrating_nodes


def brute_force_minimum(sizes_r: dict[int, float], sizes_s: dict[int, float], n: int) -> float:
    """Exhaustive minimum transfer cost for one key's cartesian join.

    Enumerates every assignment x (R sends) and y (S sends) over ``n``
    nodes; local sends are free; valid plans meet every (R_i, S_j) pair
    at some common node.
    """
    r_nodes = [i for i in range(n) if sizes_r.get(i, 0) > 0]
    s_nodes = [j for j in range(n) if sizes_s.get(j, 0) > 0]
    if not r_nodes or not s_nodes:
        return 0.0
    all_nodes = list(range(n))
    best = float("inf")

    def destinations_options(sources):
        """Per source: choose any subset of remote destinations."""
        per_source = []
        for src in sources:
            remote = [k for k in all_nodes if k != src]
            options = []
            for mask in range(2 ** len(remote)):
                options.append({remote[b] for b in range(len(remote)) if mask >> b & 1})
            per_source.append(options)
        return per_source

    r_options = destinations_options(r_nodes)
    s_options = destinations_options(s_nodes)
    for r_choice in itertools.product(*r_options):
        r_cost = sum(len(dsts) * sizes_r[i] for i, dsts in zip(r_nodes, r_choice))
        if r_cost >= best:
            continue
        r_reach = {i: dsts | {i} for i, dsts in zip(r_nodes, r_choice)}
        for s_choice in itertools.product(*s_options):
            cost = r_cost + sum(
                len(dsts) * sizes_s[j] for j, dsts in zip(s_nodes, s_choice)
            )
            if cost >= best:
                continue
            s_reach = {j: dsts | {j} for j, dsts in zip(s_nodes, s_choice)}
            valid = all(
                r_reach[i] & s_reach[j] for i in r_nodes for j in s_nodes
            )
            if valid:
                best = cost
    return best


class TestOptimality:
    """Theorem 2: the optimized direction minimum is the global optimum."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 9), min_size=3, max_size=3),
        st.lists(st.integers(0, 9), min_size=3, max_size=3),
    )
    def test_three_nodes_exhaustive(self, r_raw, s_raw):
        sizes_r = {i: float(v) for i, v in enumerate(r_raw) if v > 0}
        sizes_s = {i: float(v) for i, v in enumerate(s_raw) if v > 0}
        schedule = optimal_schedule(sizes_r, sizes_s, scheduler_node=0, location_width=0)
        expected = brute_force_minimum(sizes_r, sizes_s, 3)
        if not sizes_r or not sizes_s:
            expected = 0.0
        assert schedule.plan.cost == pytest.approx(expected)

    @pytest.mark.parametrize(
        "sizes_r,sizes_s",
        [
            ({0: 2, 2: 4}, {1: 3, 3: 1}),  # Figure 1
            ({1: 4, 2: 8, 3: 9}, {1: 2, 2: 5, 3: 3}),
            ({0: 1, 1: 1, 2: 1, 3: 1}, {0: 1, 1: 1, 2: 1, 3: 1}),
            ({0: 100}, {1: 1, 2: 1, 3: 1}),
            ({0: 1, 3: 50}, {0: 50, 3: 1}),
        ],
    )
    def test_four_nodes_cases(self, sizes_r, sizes_s):
        sizes_r = {k: float(v) for k, v in sizes_r.items()}
        sizes_s = {k: float(v) for k, v in sizes_s.items()}
        schedule = optimal_schedule(sizes_r, sizes_s, scheduler_node=0, location_width=0)
        assert schedule.plan.cost == pytest.approx(
            brute_force_minimum(sizes_r, sizes_s, 4)
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(st.integers(0, 4), st.integers(1, 20), max_size=5),
        st.dictionaries(st.integers(0, 4), st.integers(1, 20), max_size=5),
        st.integers(0, 4),
    )
    def test_migration_never_hurts(self, sizes_r, sizes_s, scheduler):
        """Theorem 1: optimized broadcast <= plain selective broadcast."""
        sizes_r = {k: float(v) for k, v in sizes_r.items()}
        sizes_s = {k: float(v) for k, v in sizes_s.items()}
        plain = selective_broadcast_cost(sizes_r, sizes_s, scheduler, location_width=1)
        optimized = migrate_and_broadcast(sizes_r, sizes_s, scheduler, location_width=1)
        assert optimized.cost <= plain + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(st.integers(0, 4), st.integers(1, 20), max_size=5),
        st.dictionaries(st.integers(0, 4), st.integers(1, 20), min_size=1, max_size=5),
        st.integers(0, 4),
        st.floats(0.0, 5.0),
    )
    def test_forced_stay_choice_is_optimal(self, sizes_r, sizes_s, scheduler, width):
        """The chosen stay node beats forcing any other holder to stay.

        Enumerates every possible forced-stay holder and recomputes the
        independent migration decisions; the implementation's plan must
        match the best of them (this is where the scheduler-local
        message discount makes the naive max-size tie-break suboptimal).
        """
        sizes_r = {k: float(v) for k, v in sizes_r.items()}
        sizes_s = {k: float(v) for k, v in sizes_s.items()}
        plan = migrate_and_broadcast(sizes_r, sizes_s, scheduler, width)
        r_all = sum(sizes_r.values())
        r_nodes = sum(1 for i, v in sizes_r.items() if v > 0 and i != scheduler)
        base = selective_broadcast_cost(sizes_r, sizes_s, scheduler, width)
        holders = [i for i, v in sizes_s.items() if v > 0]
        best = float("inf")
        for stay in holders:
            cost = base
            for i in holders:
                if i == stay:
                    continue
                delta = sizes_r.get(i, 0.0) + sizes_s[i] - r_all - r_nodes * width
                if i != scheduler:
                    delta += width
                if delta < 0:
                    cost += delta
            best = min(best, cost)
        assert plan.cost == pytest.approx(best)

    def test_empty_sides_cost_zero(self):
        schedule = optimal_schedule({}, {0: 5.0}, scheduler_node=0)
        assert schedule.plan.cost == 0
        assert schedule.plan.migrating_nodes == ()


def tracking_from_dicts(per_key: list[tuple[dict, dict]], t_nodes: list[int]) -> TrackingTable:
    """Build a TrackingTable from per-key (sizes_r, sizes_s) dicts."""
    keys, nodes, size_r, size_s = [], [], [], []
    for key, (sizes_r, sizes_s) in enumerate(per_key):
        union_nodes = sorted(set(sizes_r) | set(sizes_s))
        for node in union_nodes:
            keys.append(key)
            nodes.append(node)
            size_r.append(float(sizes_r.get(node, 0.0)))
            size_s.append(float(sizes_s.get(node, 0.0)))
    keys = np.array(keys, dtype=np.int64)
    starts = segment_boundaries(keys)
    return TrackingTable(
        keys=keys,
        nodes=np.array(nodes, dtype=np.int64),
        size_r=np.array(size_r),
        size_s=np.array(size_s),
        key_starts=starts,
        t_nodes=np.array(t_nodes, dtype=np.int64),
    )


@st.composite
def key_population(draw):
    """A list of per-key size dictionaries plus scheduler nodes."""
    num_keys = draw(st.integers(1, 6))
    per_key = []
    t_nodes = []
    for _ in range(num_keys):
        sizes_r = draw(st.dictionaries(st.integers(0, 4), st.integers(1, 30), max_size=5))
        sizes_s = draw(st.dictionaries(st.integers(0, 4), st.integers(1, 30), max_size=5))
        if not sizes_r and not sizes_s:
            sizes_r = {0: 1}
        per_key.append((sizes_r, sizes_s))
        t_nodes.append(draw(st.integers(0, 4)))
    return per_key, t_nodes


class TestVectorizedAgainstScalar:
    @settings(max_examples=80, deadline=None)
    @given(key_population(), st.floats(0.0, 4.0))
    def test_costs_match_scalar(self, population, location_width):
        per_key, t_nodes = population
        tracking = tracking_from_dicts(per_key, t_nodes)
        schedules = generate_schedules(tracking, location_width=location_width)
        for key, (sizes_r, sizes_s) in enumerate(per_key):
            scalar = optimal_schedule(
                {k: float(v) for k, v in sizes_r.items()},
                {k: float(v) for k, v in sizes_s.items()},
                scheduler_node=t_nodes[key],
                location_width=location_width,
            )
            assert schedules.cost[key] == pytest.approx(scalar.plan.cost), (
                f"key {key}: vectorized {schedules.cost[key]} != scalar "
                f"{scalar.plan.cost} for {sizes_r} vs {sizes_s}"
            )

    @settings(max_examples=30, deadline=None)
    @given(key_population())
    def test_directions_match_scalar(self, population):
        per_key, t_nodes = population
        tracking = tracking_from_dicts(per_key, t_nodes)
        schedules = generate_schedules(tracking, location_width=1.0)
        for key, (sizes_r, sizes_s) in enumerate(per_key):
            scalar = optimal_schedule(
                {k: float(v) for k, v in sizes_r.items()},
                {k: float(v) for k, v in sizes_s.items()},
                scheduler_node=t_nodes[key],
                location_width=1.0,
            )
            got = "RS" if schedules.direction_rs[key] else "SR"
            # Directions may legitimately differ only at exact cost ties.
            if scalar.plan.cost != scalar.alternative.cost:
                assert got == scalar.direction

    @settings(max_examples=30, deadline=None)
    @given(key_population())
    def test_three_phase_is_min_of_plain_directions(self, population):
        per_key, t_nodes = population
        tracking = tracking_from_dicts(per_key, t_nodes)
        schedules = generate_schedules(tracking, location_width=1.0, allow_migration=False)
        for key, (sizes_r, sizes_s) in enumerate(per_key):
            rs = selective_broadcast_cost(
                {k: float(v) for k, v in sizes_r.items()},
                {k: float(v) for k, v in sizes_s.items()},
                t_nodes[key],
                1.0,
            )
            sr = selective_broadcast_cost(
                {k: float(v) for k, v in sizes_s.items()},
                {k: float(v) for k, v in sizes_r.items()},
                t_nodes[key],
                1.0,
            )
            assert schedules.cost[key] == pytest.approx(min(rs, sr))

    def test_forced_direction(self):
        tracking = tracking_from_dicts([({0: 5}, {1: 3})], [0])
        rs = generate_schedules(tracking, 0.0, allow_migration=False, forced_direction="RS")
        sr = generate_schedules(tracking, 0.0, allow_migration=False, forced_direction="SR")
        assert rs.cost[0] == 5.0  # move R to S's node
        assert sr.cost[0] == 3.0  # move S to R's node

    def test_invalid_forced_direction(self):
        tracking = tracking_from_dicts([({0: 1}, {1: 1})], [0])
        with pytest.raises(ScheduleError):
            generate_schedules(tracking, forced_direction="XY")

    def test_empty_tracking_table(self):
        empty = np.empty(0, dtype=np.int64)
        tracking = TrackingTable(
            empty, empty, empty.astype(float), empty.astype(float), empty, empty
        )
        schedules = generate_schedules(tracking)
        assert schedules.num_keys == 0
