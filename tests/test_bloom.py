"""Unit tests for the Bloom filter substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bloom import BloomFilter, optimal_bits_per_element, optimal_num_hashes


class TestSizing:
    def test_one_percent_is_about_ten_bits(self):
        assert optimal_bits_per_element(0.01) == pytest.approx(9.585, abs=0.01)

    def test_num_hashes(self):
        assert optimal_num_hashes(9.585) == 7

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            optimal_bits_per_element(0.0)
        with pytest.raises(ValueError):
            optimal_bits_per_element(1.5)


class TestBloomFilter:
    def test_no_false_negatives(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 10**12, 5000)
        bloom = BloomFilter.for_capacity(5000, 0.01)
        bloom.add(keys)
        assert bloom.contains(keys).all()

    def test_false_positive_rate_near_target(self):
        rng = np.random.default_rng(1)
        members = rng.integers(0, 10**12, 10_000)
        bloom = BloomFilter.for_capacity(10_000, 0.01)
        bloom.add(members)
        probes = rng.integers(10**13, 10**14, 50_000)
        rate = bloom.contains(probes).mean()
        assert rate < 0.03  # target 1%, generous bound

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter.for_capacity(100)
        assert not bloom.contains(np.arange(1000)).any()

    def test_union(self):
        a = BloomFilter(1024, 3)
        b = BloomFilter(1024, 3)
        a.add(np.array([1, 2, 3]))
        b.add(np.array([100, 200]))
        merged = a.union(b)
        assert merged.contains(np.array([1, 200])).all()

    def test_union_shape_mismatch(self):
        with pytest.raises(ValueError):
            BloomFilter(64, 2).union(BloomFilter(128, 2))

    def test_wire_bytes(self):
        assert BloomFilter(1024, 3).wire_bytes == 128.0

    def test_fill_ratio_grows(self):
        bloom = BloomFilter.for_capacity(1000, 0.01)
        assert bloom.fill_ratio() == 0.0
        bloom.add(np.arange(1000))
        assert 0.2 < bloom.fill_ratio() < 0.7

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter(8, 0)

    def test_add_empty(self):
        bloom = BloomFilter(64, 2)
        bloom.add(np.array([], dtype=np.int64))
        assert bloom.fill_ratio() == 0.0
