"""Behavioural tests specific to the track join operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Cluster,
    GraceHashJoin,
    JoinSpec,
    Schema,
    TrackJoin2,
    TrackJoin3,
    TrackJoin4,
)
from repro.cluster.network import MessageClass
from repro.core.tracking import run_tracking_phase
from repro.storage import by_key_hash, random_uniform
from repro.timing.profile import ExecutionProfile

from conftest import assert_same_output, make_tables


class TestTrackingPhase:
    def _tracking(self, cluster, table_r, table_s, with_counts=True, spec=None):
        cluster.reset()
        profile = ExecutionProfile(cluster.num_nodes)
        tracking = run_tracking_phase(
            cluster, table_r, table_s, spec or JoinSpec(), profile, with_counts
        )
        for _node, _messages in cluster.network.deliver_all():
            pass
        return tracking, cluster.network.reset_ledger()

    def test_union_rows_sorted_and_merged(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        tracking, _ = self._tracking(small_cluster, table_r, table_s)
        # Sorted by (key, node) with no duplicate pairs.
        order = np.lexsort((tracking.nodes, tracking.keys))
        assert np.array_equal(order, np.arange(tracking.num_entries))
        pairs = set(zip(tracking.keys.tolist(), tracking.nodes.tolist()))
        assert len(pairs) == tracking.num_entries

    def test_sizes_match_table_contents(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        spec = JoinSpec()
        tracking, _ = self._tracking(small_cluster, table_r, table_s, spec=spec)
        width_r = table_r.schema.tuple_width(spec.encoding)
        width_s = table_s.schema.tuple_width(spec.encoding)
        assert tracking.size_r.sum() == pytest.approx(table_r.total_rows * width_r)
        assert tracking.size_s.sum() == pytest.approx(table_s.total_rows * width_s)

    def test_distinct_keys_cover_both_tables(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        tracking, _ = self._tracking(small_cluster, table_r, table_s)
        expected = np.union1d(table_r.all_keys(), table_s.all_keys())
        assert np.array_equal(tracking.distinct_keys(), expected)

    def test_counts_add_to_tracking_traffic(self, small_cluster, small_tables):
        """3/4-phase tracking costs count bytes on top of 2-phase keys."""
        table_r, table_s = small_tables
        _, with_counts = self._tracking(small_cluster, table_r, table_s, True)
        _, without = self._tracking(small_cluster, table_r, table_s, False)
        assert with_counts.class_bytes(MessageClass.KEYS_COUNTS) > without.class_bytes(
            MessageClass.KEYS_COUNTS
        )

    def test_delta_keys_reduce_tracking_traffic(self, small_cluster, small_tables):
        """Section 2.4: delta-coded key streams shrink the tracking phase."""
        table_r, table_s = small_tables
        _, plain = self._tracking(small_cluster, table_r, table_s, False)
        _, delta = self._tracking(
            small_cluster, table_r, table_s, False, JoinSpec(delta_keys=True)
        )
        assert delta.class_bytes(MessageClass.KEYS_COUNTS) < plain.class_bytes(
            MessageClass.KEYS_COUNTS
        )


class TestSelectiveBroadcast:
    def test_two_phase_sends_only_chosen_side(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        rs = TrackJoin2("RS").run(small_cluster, table_r, table_s)
        assert rs.class_bytes(MessageClass.S_TUPLES) == 0.0
        assert rs.class_bytes(MessageClass.R_TUPLES) > 0.0
        sr = TrackJoin2("SR").run(small_cluster, table_r, table_s)
        assert sr.class_bytes(MessageClass.R_TUPLES) == 0.0
        assert sr.class_bytes(MessageClass.S_TUPLES) > 0.0

    def test_semi_join_for_free(self, small_cluster):
        """Keys without matches never ship payloads (Section 3.3)."""
        table_r, table_s = make_tables(
            small_cluster, np.arange(0, 1000), np.arange(900, 1900)
        )
        spec = JoinSpec()
        result = TrackJoin2("RS").run(small_cluster, table_r, table_s, spec)
        # Only the ~100 matching R tuples may cross (plus none of S).
        width_r = table_r.schema.tuple_width(spec.encoding)
        assert result.class_bytes(MessageClass.R_TUPLES) <= 100 * width_r

    def test_three_phase_picks_cheaper_direction_per_key(self):
        """Keys heavy on S broadcast R, and vice versa, within one join."""
        cluster = Cluster(4)
        # Key 0: one R tuple, many S tuples -> R should move.
        # Key 1: many R tuples, one S tuple -> S should move.
        keys_r = np.array([0] + [1] * 50, dtype=np.int64)
        keys_s = np.array([1] + [0] * 50, dtype=np.int64)
        table_r, table_s = make_tables(
            cluster, keys_r, keys_s, payload_bits_r=64, payload_bits_s=64, seed=2
        )
        result = TrackJoin3().run(cluster, table_r, table_s)
        spec = JoinSpec()
        width = table_r.schema.tuple_width(spec.encoding)
        # Both directions used, each moving only the scarce side.
        assert 0 < result.class_bytes(MessageClass.R_TUPLES) < 10 * width
        assert 0 < result.class_bytes(MessageClass.S_TUPLES) < 10 * width


class TestMigration:
    def test_consolidation_beats_hash_join_on_spread_repeats(self):
        """Shuffled repeated keys: 4TJ consolidates to the largest holder."""
        cluster = Cluster(8)
        rng = np.random.default_rng(4)
        keys = np.repeat(np.arange(200), 6)
        table_r, table_s = make_tables(
            cluster, keys, np.repeat(np.arange(200), 10), seed=9
        )
        spec = JoinSpec()
        four = TrackJoin4().run(cluster, table_r, table_s, spec)
        hash_join = GraceHashJoin().run(cluster, table_r, table_s, spec)
        assert_same_output(four, hash_join)

        def payload(result):
            return result.class_bytes(MessageClass.R_TUPLES) + result.class_bytes(
                MessageClass.S_TUPLES
            )

        # Consolidating at the best pre-existing holder moves fewer
        # payload bytes than hashing to a random node.
        assert payload(four) < payload(hash_join)

    def test_migration_traffic_recorded_as_tuple_classes(self):
        cluster = Cluster(4)
        # All S of key k on node a+b, R on one node: migrations occur.
        keys = np.arange(100, dtype=np.int64)
        schema = Schema.with_widths(32, 256)
        table_r = cluster.table_from_assignment(
            "R", schema, np.repeat(keys, 3), random_uniform(300, 4, seed=1)
        )
        table_s = cluster.table_from_assignment(
            "S", schema, np.repeat(keys, 3), random_uniform(300, 4, seed=2)
        )
        result = TrackJoin4().run(cluster, table_r, table_s)
        assert result.output_rows == 900
        total_tuple_bytes = result.class_bytes(MessageClass.R_TUPLES) + result.class_bytes(
            MessageClass.S_TUPLES
        )
        assert total_tuple_bytes > 0

    def test_full_collocation_only_tracking_traffic(self):
        cluster = Cluster(8)
        keys = np.repeat(np.arange(300, dtype=np.int64), 4)
        nodes = by_key_hash(keys, 8, seed=77)
        schema = Schema.with_widths(32, 64)
        table_r = cluster.table_from_assignment("R", schema, keys, nodes)
        table_s = cluster.table_from_assignment("S", schema, keys, nodes)
        result = TrackJoin4().run(cluster, table_r, table_s)
        assert result.class_bytes(MessageClass.R_TUPLES) == 0.0
        assert result.class_bytes(MessageClass.S_TUPLES) == 0.0
        assert result.class_bytes(MessageClass.KEYS_COUNTS) > 0.0
        assert result.output_rows == 300 * 16


class TestSpecOptions:
    def test_grouped_locations_cheaper(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        plain = TrackJoin4().run(small_cluster, table_r, table_s, JoinSpec())
        grouped = TrackJoin4().run(
            small_cluster, table_r, table_s, JoinSpec(group_locations=True)
        )
        assert grouped.class_bytes(MessageClass.KEYS_NODES) < plain.class_bytes(
            MessageClass.KEYS_NODES
        )
        assert_same_output(plain, grouped)

    def test_wider_location_messages_cost_more(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        narrow = TrackJoin4().run(small_cluster, table_r, table_s, JoinSpec(location_width=1))
        wide = TrackJoin4().run(small_cluster, table_r, table_s, JoinSpec(location_width=4))
        assert wide.class_bytes(MessageClass.KEYS_NODES) > narrow.class_bytes(
            MessageClass.KEYS_NODES
        )

    def test_profile_contains_paper_steps(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        result = TrackJoin4().run(small_cluster, table_r, table_s)
        step_names = {step.name for step in result.profile.steps}
        assert "Aggregate keys" in step_names
        assert "Generate schedules and partition by node" in step_names
        assert any(name.startswith("Transfer key, count") for name in step_names)
