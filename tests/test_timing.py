"""Tests for execution profiles and the hardware timing model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timing import (
    CPU,
    LOCAL,
    NET,
    ExecutionProfile,
    HardwareModel,
    paper_cluster_2014,
    scaled_network,
)


class TestExecutionProfile:
    def test_steps_accumulate_by_name(self):
        profile = ExecutionProfile(4)
        profile.add_cpu_at("Sort", "sort", 0, 100)
        profile.add_cpu_at("Sort", "sort", 1, 300)
        assert len(profile.steps) == 1
        step = profile.step_named("Sort")
        assert step.total_bytes == 400
        assert step.max_node_bytes == 300

    def test_kinds_are_separate_steps(self):
        profile = ExecutionProfile(2)
        profile.add_cpu_at("X", "sort", 0, 1)
        profile.add_net_at("X", 0, 1)
        assert len(profile.steps) == 2

    def test_shape_validation(self):
        profile = ExecutionProfile(3)
        with pytest.raises(ValueError):
            profile.add_cpu("Bad", "sort", np.zeros(2))

    def test_total_network_bytes(self):
        profile = ExecutionProfile(2)
        profile.add_net_at("T1", 0, 10)
        profile.add_net_at("T2", 1, 30)
        profile.add_cpu_at("C", "sort", 0, 99)
        assert profile.total_network_bytes() == 40

    def test_local_steps(self):
        profile = ExecutionProfile(2)
        step = profile.add_local("Copy", 1, 50)
        assert step.kind == LOCAL
        assert step.rate_class == "copy"


class TestHardwareModel:
    def test_network_time_uses_total_bytes(self):
        model = HardwareModel(num_nodes=4, net_aggregate_bandwidth=100.0, cpu_rates={})
        profile = ExecutionProfile(4)
        profile.add_net("Transfer", [100, 100, 100, 100])
        assert model.network_seconds(profile) == pytest.approx(4.0)

    def test_cpu_time_uses_max_node(self):
        model = HardwareModel(4, 1.0, cpu_rates={"sort": 10.0})
        profile = ExecutionProfile(4)
        profile.add_cpu("Sort", "sort", [10, 40, 20, 10])
        assert model.cpu_seconds(profile) == pytest.approx(4.0)

    def test_unknown_rate_class(self):
        model = HardwareModel(2, 1.0, cpu_rates={})
        profile = ExecutionProfile(2)
        profile.add_cpu("Weird", "weird", [1, 1])
        with pytest.raises(KeyError):
            model.cpu_seconds(profile)

    def test_local_copies_count_as_cpu(self):
        model = HardwareModel(2, 1.0, cpu_rates={"copy": 5.0})
        profile = ExecutionProfile(2)
        profile.add_local("Copy", 0, 10)
        assert model.cpu_seconds(profile) == pytest.approx(2.0)
        assert model.network_seconds(profile) == 0.0

    def test_paper_preset_reproduces_hash_join_transfer(self):
        """Sanity anchor: 6.35 GB of remote R tuples ~ 29.5 s (Table 3)."""
        model = paper_cluster_2014(4)
        profile = ExecutionProfile(4)
        profile.add_net("Transfer R tuples", [6.35e9 / 4] * 4)
        assert model.network_seconds(profile) == pytest.approx(29.5, rel=0.05)

    def test_scaled_network(self):
        base = paper_cluster_2014(4)
        fast = scaled_network(base, 10.0)
        assert fast.net_aggregate_bandwidth == pytest.approx(
            10 * base.net_aggregate_bandwidth
        )
        assert fast.cpu_rates == base.cpu_rates

    def test_total_seconds_depipelined_vs_overlapped(self):
        model = HardwareModel(2, 10.0, cpu_rates={"sort": 10.0})
        profile = ExecutionProfile(2)
        profile.add_cpu("Sort", "sort", [30, 10])
        profile.add_net("Transfer", [20, 20])
        assert model.total_seconds(profile) == pytest.approx(3.0 + 4.0)
        assert model.total_seconds(profile, overlap=True) == pytest.approx(4.0)

    def test_overlap_bounded_by_depipelined(self):
        model = paper_cluster_2014(4)
        profile = ExecutionProfile(4)
        profile.add_cpu("Sort", "sort", [1e9] * 4)
        profile.add_net("Transfer", [1e8] * 4)
        assert model.total_seconds(profile, overlap=True) <= model.total_seconds(profile)

    def test_step_timings_in_order(self):
        model = HardwareModel(2, 10.0, cpu_rates={"sort": 10.0})
        profile = ExecutionProfile(2)
        profile.add_cpu_at("A", "sort", 0, 10)
        profile.add_net_at("B", 0, 10)
        timings = model.step_timings(profile)
        assert [t.name for t in timings] == ["A", "B"]
        assert timings[0].kind == CPU and timings[1].kind == NET


class TestBottleneckSeconds:
    def test_busiest_link_drives_makespan(self):
        from repro.cluster.network import Message, MessageClass, TrafficLedger
        from repro.timing import bottleneck_seconds

        ledger = TrafficLedger()
        ledger.record(Message(0, 1, MessageClass.R_TUPLES, 100.0, None))
        ledger.record(Message(0, 2, MessageClass.R_TUPLES, 40.0, None))
        assert bottleneck_seconds(ledger, per_link_bandwidth=10.0) == pytest.approx(10.0)

    def test_empty_ledger(self):
        from repro.cluster.network import TrafficLedger
        from repro.timing import bottleneck_seconds

        assert bottleneck_seconds(TrafficLedger(), 1.0) == 0.0

    def test_invalid_bandwidth(self):
        from repro.cluster.network import TrafficLedger
        from repro.timing import bottleneck_seconds

        with pytest.raises(ValueError):
            bottleneck_seconds(TrafficLedger(), 0.0)

    def test_balanced_schedule_lower_makespan(self):
        """The balance-aware scheduler can lower the link makespan even
        at equal total traffic."""
        import numpy as np

        from repro import Cluster, JoinSpec, Schema, TrackJoin4
        from repro.core.balance import BalanceAwareTrackJoin
        from repro.timing import bottleneck_seconds
        from repro.testing import scatter_tables

        cluster = Cluster(6)
        rng = np.random.default_rng(3)
        keys = np.repeat(np.arange(300, dtype=np.int64), 4)
        schema = Schema.with_widths(32, 128)
        nodes_r = rng.integers(0, 6, len(keys))
        nodes_s = np.where(rng.random(len(keys)) < 0.7, 0, rng.integers(0, 6, len(keys)))
        table_r = cluster.table_from_assignment("R", schema, keys, nodes_r)
        table_s = cluster.table_from_assignment("S", schema, keys, nodes_s)
        optimal = TrackJoin4().run(cluster, table_r, table_s)
        balanced = BalanceAwareTrackJoin().run(cluster, table_r, table_s)
        assert bottleneck_seconds(balanced.traffic, 1.0) <= bottleneck_seconds(
            optimal.traffic, 1.0
        ) * 1.05
