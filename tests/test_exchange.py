"""Unit tests for the :mod:`repro.exchange` communication primitives.

The golden suite (``test_exchange_golden.py``) proves the operators
kept their exact traffic behavior through the refactor; this file
covers the receiver-side contracts directly — above all the requeue
branch of :func:`drain_category`, which keeps mixed-class inboxes
intact when an operator drains only the class it consumes.
"""

from __future__ import annotations

import numpy as np

from repro import Cluster
from repro.cluster.network import MessageClass
from repro.exchange import (
    Gather,
    drain_category,
    drain_payloads,
    flush,
    replicate_size,
    send_rows,
)
from repro.storage import LocalPartition
from repro.timing.profile import ExecutionProfile


def _part(*keys):
    keys = np.asarray(keys, dtype=np.int64)
    return LocalPartition(keys=keys, columns={"v": keys * 10})


class TestDrainCategory:
    def test_mixed_inbox_requeues_other_categories(self):
        """Non-matching messages survive a selective drain via requeue."""
        cluster = Cluster(2)
        net = cluster.network
        net.send(0, 1, MessageClass.R_TUPLES, 8.0, payload=_part(1))
        net.send(0, 1, MessageClass.S_TUPLES, 8.0, payload=_part(2))
        net.send(1, 1, MessageClass.R_TUPLES, 8.0, payload=_part(3))
        net.send(0, 1, MessageClass.FILTER, 4.0, payload=_part(4))

        kept = drain_category(cluster, 1, MessageClass.R_TUPLES)
        assert [p.keys.tolist() for p in kept] == [[1], [3]]

        # The S_TUPLES and FILTER messages went back on the inbox tail,
        # in their original arrival order, and a later drain finds them.
        survivors = net.deliver(1)
        assert [m.category for m in survivors] == [
            MessageClass.S_TUPLES,
            MessageClass.FILTER,
        ]
        assert [p.keys.tolist() for p in (m.payload for m in survivors)] == [[2], [4]]

    def test_sequential_drains_consume_one_class_each(self):
        """The pattern the join phase relies on: drain R, then drain S."""
        cluster = Cluster(2)
        net = cluster.network
        net.send(0, 0, MessageClass.S_TUPLES, 8.0, payload=_part(7))
        net.send(1, 0, MessageClass.R_TUPLES, 8.0, payload=_part(8))

        assert [p.keys.tolist() for p in drain_category(cluster, 0, MessageClass.R_TUPLES)] == [[8]]
        assert [p.keys.tolist() for p in drain_category(cluster, 0, MessageClass.S_TUPLES)] == [[7]]
        assert net.deliver(0) == []

    def test_requeue_never_double_accounts(self):
        """Messages were accounted at send time; drains change nothing."""
        cluster = Cluster(2)
        net = cluster.network
        net.send(0, 1, MessageClass.R_TUPLES, 16.0, payload=_part(1))
        net.send(0, 1, MessageClass.S_TUPLES, 24.0, payload=_part(2))
        before = (net.ledger.total_bytes, net.ledger.message_count)

        drain_category(cluster, 1, MessageClass.R_TUPLES)
        drain_category(cluster, 1, MessageClass.R_TUPLES)  # requeued S again

        assert (net.ledger.total_bytes, net.ledger.message_count) == before
        assert [m.category for m in net.deliver(1)] == [MessageClass.S_TUPLES]

    def test_empty_inbox(self):
        cluster = Cluster(2)
        assert drain_category(cluster, 0, MessageClass.R_TUPLES) == []
        assert drain_payloads(cluster, 0) == []


class TestRequeueEdgeCases:
    def test_requeue_empty_sequence_is_noop(self):
        cluster = Cluster(2)
        net = cluster.network
        net.requeue(1, [])
        assert net.pending_messages() == 0
        assert net.deliver(1) == []

    def test_requeue_during_open_phase_skips_staged_lanes(self):
        """Requeued messages rejoin the committed inbox immediately;
        messages staged in an open phase stay invisible until the
        barrier commits them."""
        cluster = Cluster(2)
        net = cluster.network
        net.send(0, 1, MessageClass.FILTER, 4.0, payload=_part(1))
        drained = net.deliver(1)

        lanes = net.begin_phase(1)
        with net.bind_lane(lanes[0]):
            net.send(0, 1, MessageClass.S_TUPLES, 8.0, payload=_part(2))
        net.requeue(1, drained)
        assert [m.category for m in net.deliver(1)] == [MessageClass.FILTER]
        net.end_phase()
        assert [m.category for m in net.deliver(1)] == [MessageClass.S_TUPLES]

    def test_repeated_selective_drains_preserve_arrival_order(self):
        """Messages that survive several selective drains keep their
        original relative order within the inbox."""
        cluster = Cluster(2)
        net = cluster.network
        for key in (1, 2, 3):
            net.send(0, 1, MessageClass.S_TUPLES, 8.0, payload=_part(key))
        net.send(0, 1, MessageClass.FILTER, 4.0, payload=_part(9))

        for _ in range(3):  # each drain requeues all four survivors
            assert drain_category(cluster, 1, MessageClass.R_TUPLES) == []
        kept = drain_category(cluster, 1, MessageClass.S_TUPLES)
        assert [p.keys.tolist() for p in kept] == [[1], [2], [3]]
        assert [m.category for m in net.deliver(1)] == [MessageClass.FILTER]

    def test_requeue_under_fault_plan_stays_idempotent(self):
        """With an injector installed, a redelivery after requeue still
        dedups and restores sequence order."""
        from repro.faults import FaultPlan

        cluster = Cluster(2, fault_plan=FaultPlan(seed=0, duplicate=1.0))
        net = cluster.network
        net.send(0, 1, MessageClass.R_TUPLES, 8.0, payload=_part(1))
        net.send(0, 1, MessageClass.S_TUPLES, 8.0, payload=_part(2))

        kept = drain_category(cluster, 1, MessageClass.R_TUPLES)
        assert [p.keys.tolist() for p in kept] == [[1]]
        survivors = net.deliver(1)
        assert [m.category for m in survivors] == [MessageClass.S_TUPLES]
        assert net.ledger.retransmit_count > 0


class TestGather:
    def test_empty_nodes_get_schema_shaped_partitions(self):
        cluster = Cluster(3)
        cluster.network.send(0, 1, MessageClass.R_TUPLES, 8.0, payload=_part(5))
        gathered = Gather(MessageClass.R_TUPLES, empty_names=("v",)).run(cluster)
        assert [p.num_rows for p in gathered] == [0, 1, 0]
        for partition in gathered:
            assert tuple(partition.columns) == ("v",)

    def test_concatenates_arrivals_in_order(self):
        cluster = Cluster(2)
        cluster.network.send(0, 0, MessageClass.R_TUPLES, 8.0, payload=_part(1, 2))
        cluster.network.send(1, 0, MessageClass.R_TUPLES, 8.0, payload=_part(3))
        gathered = Gather(MessageClass.R_TUPLES).run(cluster)
        assert gathered[0].keys.tolist() == [1, 2, 3]
        assert gathered[0].columns["v"].tolist() == [10, 20, 30]


class TestAccountingPrimitives:
    def test_send_rows_local_vs_remote(self):
        cluster = Cluster(2)
        profile = ExecutionProfile(cluster.num_nodes)
        remote = send_rows(
            cluster, profile, MessageClass.R_TUPLES, 0, 1, _part(1, 2), 8.0,
            "Transfer x", "Local copy x",
        )
        local = send_rows(
            cluster, profile, MessageClass.R_TUPLES, 0, 0, _part(3), 8.0,
            "Transfer x", "Local copy x",
        )
        assert (remote, local) == (16.0, 8.0)
        assert cluster.network.ledger.total_bytes == 16.0
        assert cluster.network.ledger.local_bytes == 8.0
        by_step = {(s.name, s.kind) for s in profile.steps}
        assert ("Transfer x", "net") in by_step
        assert ("Local copy x", "local") in by_step
        flush(cluster)

    def test_replicate_size_reaches_every_other_node(self):
        cluster = Cluster(4)
        profile = ExecutionProfile(cluster.num_nodes)
        replicate_size(
            cluster, profile, MessageClass.FILTER, 1, 32.0, "Broadcast filters"
        )
        ledger = cluster.network.ledger
        assert ledger.total_bytes == 3 * 32.0
        assert all(src == 1 and dst != 1 for (src, dst) in ledger.by_link)
        flush(cluster)
        assert cluster.network.pending_messages() == 0
