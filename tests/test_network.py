"""Unit tests for the network fabric and traffic ledger."""

from __future__ import annotations

import pytest

from repro.cluster.network import Message, MessageClass, Network, TrafficLedger
from repro.errors import NetworkError


class TestTrafficLedger:
    def test_remote_message_accounted(self):
        ledger = TrafficLedger()
        ledger.record(Message(0, 1, MessageClass.R_TUPLES, 100.0, None))
        assert ledger.total_bytes == 100.0
        assert ledger.class_bytes(MessageClass.R_TUPLES) == 100.0
        assert ledger.by_link[(0, 1)] == 100.0
        assert ledger.sent_by_node[0] == 100.0
        assert ledger.received_by_node[1] == 100.0
        assert ledger.local_bytes == 0.0

    def test_local_message_not_network_traffic(self):
        ledger = TrafficLedger()
        ledger.record(Message(2, 2, MessageClass.S_TUPLES, 50.0, None))
        assert ledger.total_bytes == 0.0
        assert ledger.local_bytes == 50.0
        assert ledger.message_count == 1

    def test_breakdown_covers_all_classes(self):
        ledger = TrafficLedger()
        ledger.record(Message(0, 1, MessageClass.KEYS_COUNTS, 10.0, None))
        breakdown = ledger.breakdown()
        assert set(breakdown) == {c.value for c in MessageClass}
        assert breakdown["keys_counts"] == 10.0
        assert breakdown["r_tuples"] == 0.0

    def test_merged_with(self):
        a = TrafficLedger()
        b = TrafficLedger()
        a.record(Message(0, 1, MessageClass.R_TUPLES, 10.0, None))
        b.record(Message(1, 0, MessageClass.R_TUPLES, 5.0, None))
        merged = a.merged_with(b)
        assert merged.total_bytes == 15.0
        assert merged.message_count == 2
        # Originals untouched.
        assert a.total_bytes == 10.0


class TestNetwork:
    def test_send_and_deliver(self):
        net = Network(3)
        net.send(0, 2, MessageClass.R_TUPLES, 42.0, payload="hello")
        assert net.pending_messages() == 1
        messages = net.deliver(2)
        assert len(messages) == 1
        assert messages[0].payload == "hello"
        assert net.pending_messages() == 0

    def test_deliver_all(self):
        net = Network(3)
        net.send(0, 1, MessageClass.R_TUPLES, 1.0)
        net.send(0, 2, MessageClass.R_TUPLES, 1.0)
        delivered = dict(net.deliver_all())
        assert set(delivered) == {1, 2}

    def test_invalid_node_rejected(self):
        net = Network(2)
        with pytest.raises(NetworkError):
            net.send(0, 5, MessageClass.R_TUPLES, 1.0)
        with pytest.raises(NetworkError):
            net.send(-1, 0, MessageClass.R_TUPLES, 1.0)
        with pytest.raises(NetworkError):
            net.deliver(3)

    def test_negative_bytes_rejected(self):
        net = Network(2)
        with pytest.raises(NetworkError):
            net.send(0, 1, MessageClass.R_TUPLES, -1.0)

    def test_zero_nodes_rejected(self):
        with pytest.raises(NetworkError):
            Network(0)

    def test_reset_ledger(self):
        net = Network(2)
        net.send(0, 1, MessageClass.R_TUPLES, 9.0)
        old = net.reset_ledger()
        assert old.total_bytes == 9.0
        assert net.ledger.total_bytes == 0.0

    def test_fractional_bytes(self):
        """Dictionary encodings produce sub-byte widths; they must add up."""
        net = Network(2)
        for _ in range(8):
            net.send(0, 1, MessageClass.KEYS_COUNTS, 30 / 8)
        assert net.ledger.total_bytes == pytest.approx(30.0)
