"""Unit tests for the network fabric and traffic ledger."""

from __future__ import annotations

import random

import pytest

from repro.cluster.network import Message, MessageClass, Network, TrafficLedger
from repro.errors import NetworkError


def _random_ledger(rng: random.Random, num_nodes: int = 6) -> TrafficLedger:
    """A ledger of random messages with dyadic-rational sizes.

    Eighths of a byte sum exactly in float64, so equality below is
    bit-for-bit, not approximate.
    """
    ledger = TrafficLedger()
    classes = list(MessageClass)
    for _ in range(rng.randrange(1, 40)):
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes)
        category = rng.choice(classes)
        nbytes = rng.randrange(0, 1 << 16) / 8.0
        ledger.record(Message(src, dst, category, nbytes, None))
    return ledger


def _snapshot(ledger: TrafficLedger):
    """Order-independent, comparable view of every ledger counter."""
    return (
        sorted((category.name, nbytes) for category, nbytes in ledger.by_class.items()),
        sorted(ledger.by_link.items()),
        sorted(ledger.sent_by_node.items()),
        sorted(ledger.received_by_node.items()),
        ledger.local_bytes,
        ledger.message_count,
    )


class TestTrafficLedger:
    def test_remote_message_accounted(self):
        ledger = TrafficLedger()
        ledger.record(Message(0, 1, MessageClass.R_TUPLES, 100.0, None))
        assert ledger.total_bytes == 100.0
        assert ledger.class_bytes(MessageClass.R_TUPLES) == 100.0
        assert ledger.by_link[(0, 1)] == 100.0
        assert ledger.sent_by_node[0] == 100.0
        assert ledger.received_by_node[1] == 100.0
        assert ledger.local_bytes == 0.0

    def test_local_message_not_network_traffic(self):
        ledger = TrafficLedger()
        ledger.record(Message(2, 2, MessageClass.S_TUPLES, 50.0, None))
        assert ledger.total_bytes == 0.0
        assert ledger.local_bytes == 50.0
        assert ledger.message_count == 1

    def test_breakdown_covers_all_classes(self):
        ledger = TrafficLedger()
        ledger.record(Message(0, 1, MessageClass.KEYS_COUNTS, 10.0, None))
        breakdown = ledger.breakdown()
        assert set(breakdown) == {c.value for c in MessageClass}
        assert breakdown["keys_counts"] == 10.0
        assert breakdown["r_tuples"] == 0.0

    def test_merge_commutative(self):
        rng = random.Random(11)
        for _ in range(20):
            a, b = _random_ledger(rng), _random_ledger(rng)
            ab = a.merged_with(b)
            ba = b.merged_with(a)
            assert _snapshot(ab) == _snapshot(ba)

    def test_merge_associative(self):
        rng = random.Random(23)
        for _ in range(20):
            a, b, c = (_random_ledger(rng) for _ in range(3))
            left = a.merged_with(b).merge(c)
            right = a.merged_with(b.merged_with(c))
            assert _snapshot(left) == _snapshot(right)

    def test_merge_identity(self):
        rng = random.Random(5)
        ledger = _random_ledger(rng)
        before = _snapshot(ledger)
        assert _snapshot(ledger.merged_with(TrafficLedger())) == before
        assert _snapshot(TrafficLedger().merge(ledger)) == before

    def test_merge_mutates_in_place_and_returns_self(self):
        a = TrafficLedger()
        b = TrafficLedger()
        b.record(Message(0, 1, MessageClass.S_TUPLES, 4.0, None))
        result = a.merge(b)
        assert result is a
        assert a.total_bytes == 4.0
        # The source ledger is untouched.
        assert b.total_bytes == 4.0 and b.message_count == 1

    def test_merged_with(self):
        a = TrafficLedger()
        b = TrafficLedger()
        a.record(Message(0, 1, MessageClass.R_TUPLES, 10.0, None))
        b.record(Message(1, 0, MessageClass.R_TUPLES, 5.0, None))
        merged = a.merged_with(b)
        assert merged.total_bytes == 15.0
        assert merged.message_count == 2
        # Originals untouched.
        assert a.total_bytes == 10.0


class TestNetwork:
    def test_send_and_deliver(self):
        net = Network(3)
        net.send(0, 2, MessageClass.R_TUPLES, 42.0, payload="hello")
        assert net.pending_messages() == 1
        messages = net.deliver(2)
        assert len(messages) == 1
        assert messages[0].payload == "hello"
        assert net.pending_messages() == 0

    def test_deliver_all(self):
        net = Network(3)
        net.send(0, 1, MessageClass.R_TUPLES, 1.0)
        net.send(0, 2, MessageClass.R_TUPLES, 1.0)
        delivered = dict(net.deliver_all())
        assert set(delivered) == {1, 2}

    def test_invalid_node_rejected(self):
        net = Network(2)
        with pytest.raises(NetworkError):
            net.send(0, 5, MessageClass.R_TUPLES, 1.0)
        with pytest.raises(NetworkError):
            net.send(-1, 0, MessageClass.R_TUPLES, 1.0)
        with pytest.raises(NetworkError):
            net.deliver(3)

    def test_negative_bytes_rejected(self):
        net = Network(2)
        with pytest.raises(NetworkError):
            net.send(0, 1, MessageClass.R_TUPLES, -1.0)

    def test_non_finite_bytes_rejected(self):
        """Regression: NaN sizes silently poisoned every downstream sum."""
        net = Network(2)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(NetworkError):
                net.send(0, 1, MessageClass.R_TUPLES, bad)
        # Nothing was accounted or enqueued by the rejected sends.
        assert net.ledger.message_count == 0
        assert net.pending_messages() == 0

    def test_zero_nodes_rejected(self):
        with pytest.raises(NetworkError):
            Network(0)

    def test_reset_ledger(self):
        net = Network(2)
        net.send(0, 1, MessageClass.R_TUPLES, 9.0)
        old = net.reset_ledger()
        assert old.total_bytes == 9.0
        assert net.ledger.total_bytes == 0.0

    def test_fractional_bytes(self):
        """Dictionary encodings produce sub-byte widths; they must add up."""
        net = Network(2)
        for _ in range(8):
            net.send(0, 1, MessageClass.KEYS_COUNTS, 30 / 8)
        assert net.ledger.total_bytes == pytest.approx(30.0)


class TestNetworkPhases:
    def test_lanes_commit_in_task_order(self):
        """Inbox order after the barrier follows lane order, not send order."""
        net = Network(2)
        lanes = net.begin_phase(3)
        # Bind lanes in reverse to prove commit order is lane order.
        for lane_id in (2, 1, 0):
            with net.bind_lane(lanes[lane_id]):
                net.send(0, 1, MessageClass.RIDS, 1.0, payload=lane_id)
        net.end_phase()
        payloads = [msg.payload for msg in net.deliver(1)]
        assert payloads == [0, 1, 2]

    def test_staged_sends_invisible_until_barrier(self):
        net = Network(2)
        lanes = net.begin_phase(1)
        with net.bind_lane(lanes[0]):
            net.send(0, 1, MessageClass.RIDS, 8.0)
        # Staged: counted as pending but not yet delivered or accounted.
        assert net.pending_messages() == 1
        assert net.deliver(1) == []
        assert net.ledger.total_bytes == 0.0
        net.end_phase()
        assert net.ledger.total_bytes == 8.0
        assert len(net.deliver(1)) == 1

    def test_unbound_sends_keep_immediate_semantics(self):
        net = Network(2)
        net.begin_phase(2)
        net.send(0, 1, MessageClass.RIDS, 2.0)
        assert net.ledger.total_bytes == 2.0
        assert len(net.deliver(1)) == 1
        net.end_phase()

    def test_abort_discards_staged_lanes(self):
        net = Network(2)
        lanes = net.begin_phase(1)
        with net.bind_lane(lanes[0]):
            net.send(0, 1, MessageClass.RIDS, 8.0)
        net.abort_phase()
        assert net.pending_messages() == 0
        assert net.ledger.total_bytes == 0.0

    def test_nested_phase_rejected(self):
        net = Network(2)
        net.begin_phase(1)
        with pytest.raises(NetworkError):
            net.begin_phase(1)
        net.abort_phase()
        with pytest.raises(NetworkError):
            net.end_phase()

    def test_reset_ledger_rejected_while_phase_open(self):
        net = Network(2)
        net.begin_phase(1)
        with pytest.raises(NetworkError):
            net.reset_ledger()
        net.abort_phase()
