"""Tests for the MSB radix sort kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.joins.radix import msb_byte_histogram, radix_argsort, radix_sort


class TestRadixSort:
    def test_empty(self):
        assert len(radix_argsort(np.array([], dtype=np.int64))) == 0

    def test_small_array(self):
        keys = np.array([5, 1, 9, 1, 3])
        assert radix_sort(keys).tolist() == [1, 1, 3, 5, 9]

    def test_large_random(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(-(2**62), 2**62, 50_000)
        assert np.array_equal(radix_sort(keys), np.sort(keys))

    def test_argsort_is_permutation(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 1000, 5000)
        order = radix_argsort(keys)
        assert np.array_equal(np.sort(order), np.arange(5000))

    def test_stability_on_equal_keys(self):
        """Equal keys keep input order (stable like the numpy fallback)."""
        keys = np.array([7, 7, 7, 7])
        assert radix_argsort(keys).tolist() == [0, 1, 2, 3]

    def test_negative_values(self):
        keys = np.array([5, -3, 0, -(2**60), 2**60])
        assert radix_sort(keys).tolist() == sorted(keys.tolist())

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.integers(-(2**63), 2**63 - 1), min_size=0, max_size=300
        )
    )
    def test_matches_numpy_sort(self, raw):
        keys = np.array(raw, dtype=np.int64)
        assert np.array_equal(radix_sort(keys), np.sort(keys))

    def test_histogram(self):
        keys = np.zeros(10, dtype=np.int64)  # sign-flipped MSB = 0x80
        hist = msb_byte_histogram(keys, 56)
        assert hist[0x80] == 10
        assert hist.sum() == 10
