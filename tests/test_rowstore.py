"""Tests for row-store organization (paper property iv)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GraceHashJoin, Schema, TrackJoin4
from repro.errors import SchemaError
from repro.storage import LocalPartition
from repro.storage.rowstore import from_row_store, row_store_table, to_row_store

from conftest import assert_same_output, make_tables


class TestConversions:
    def test_roundtrip(self):
        partition = LocalPartition(
            keys=np.array([3, 1, 2]),
            columns={"a": np.array([30, 10, 20]), "b": np.array([1.5, 2.5, 3.5])},
        )
        back = from_row_store(to_row_store(partition))
        assert np.array_equal(back.keys, partition.keys)
        assert np.array_equal(back.columns["a"], partition.columns["a"])
        assert np.array_equal(back.columns["b"], partition.columns["b"])

    def test_rows_are_contiguous_records(self):
        partition = LocalPartition(
            keys=np.array([1, 2]), columns={"a": np.array([10, 20])}
        )
        rows = to_row_store(partition)
        assert rows.shape == (2,)
        assert rows[0]["__key__"] == 1 and rows[0]["a"] == 10

    def test_missing_key_field_rejected(self):
        bad = np.zeros(3, dtype=[("x", np.int64)])
        with pytest.raises(SchemaError):
            from_row_store(bad)

    def test_empty_partition(self):
        empty = LocalPartition(keys=np.empty(0, dtype=np.int64), columns={})
        assert from_row_store(to_row_store(empty)).num_rows == 0


class TestJoinsOnRowStoreTables:
    def test_track_join_unchanged_by_organization(self, small_cluster, small_tables):
        """Joining row-store-origin tables gives identical results and
        traffic — the algorithm never sees the local layout."""
        table_r, table_s = small_tables
        rows_r = [to_row_store(p) for p in table_r.partitions]
        rows_s = [to_row_store(p) for p in table_s.partitions]
        row_r = row_store_table("R", table_r.schema, rows_r)
        row_s = row_store_table("S", table_s.schema, rows_s)
        columnar = TrackJoin4().run(small_cluster, table_r, table_s)
        row_based = TrackJoin4().run(small_cluster, row_r, row_s)
        assert_same_output(columnar, row_based)
        assert row_based.network_bytes == pytest.approx(columnar.network_bytes)
