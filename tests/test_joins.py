"""Integration tests: every distributed join produces the same output.

This is the central correctness property of the library — broadcast,
Grace hash, rid-based, Bloom-filtered, and all track join variants are
different *transfer strategies* for the same equi-join, so their output
multisets must be identical on every input.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BroadcastJoin,
    Cluster,
    GraceHashJoin,
    JoinSpec,
    TrackJoin2,
    TrackJoin3,
    TrackJoin4,
)
from repro.cluster.network import MessageClass
from repro.errors import JoinConfigError
from repro.joins import (
    LateMaterializationHashJoin,
    SemiJoinFilteredJoin,
    TrackingAwareHashJoin,
)

from conftest import assert_same_output, canonical_output, make_tables


def all_algorithms():
    return [
        GraceHashJoin(),
        BroadcastJoin("R"),
        BroadcastJoin("S"),
        TrackJoin2("RS"),
        TrackJoin2("SR"),
        TrackJoin3(),
        TrackJoin4(),
        LateMaterializationHashJoin(),
        TrackingAwareHashJoin(),
        SemiJoinFilteredJoin(GraceHashJoin()),
        SemiJoinFilteredJoin(TrackJoin4()),
    ]


class TestOutputEquality:
    def test_all_algorithms_agree(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        reference = GraceHashJoin().run(small_cluster, table_r, table_s)
        for algorithm in all_algorithms()[1:]:
            result = algorithm.run(small_cluster, table_r, table_s)
            assert_same_output(reference, result)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(0, 30), min_size=0, max_size=120),
        st.lists(st.integers(0, 30), min_size=0, max_size=120),
        st.integers(2, 6),
        st.integers(0, 100),
    )
    def test_random_inputs_agree(self, keys_r, keys_s, num_nodes, seed):
        cluster = Cluster(num_nodes)
        table_r, table_s = make_tables(
            cluster, np.array(keys_r, dtype=np.int64), np.array(keys_s, dtype=np.int64),
            seed=seed,
        )
        results = [
            algorithm.run(cluster, table_r, table_s)
            for algorithm in (
                GraceHashJoin(),
                TrackJoin2("RS"),
                TrackJoin2("SR"),
                TrackJoin3(),
                TrackJoin4(),
                TrackingAwareHashJoin(),
            )
        ]
        for other in results[1:]:
            assert_same_output(results[0], other)

    def test_empty_inputs(self, small_cluster):
        table_r, table_s = make_tables(
            small_cluster, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        for algorithm in all_algorithms():
            result = algorithm.run(small_cluster, table_r, table_s)
            assert result.output_rows == 0

    def test_disjoint_keys(self, small_cluster):
        table_r, table_s = make_tables(
            small_cluster, np.arange(0, 100), np.arange(1000, 1100)
        )
        for algorithm in all_algorithms():
            assert algorithm.run(small_cluster, table_r, table_s).output_rows == 0

    def test_skewed_single_key(self, small_cluster):
        """One hot key repeated on both sides exercises cartesian output."""
        table_r, table_s = make_tables(
            small_cluster, np.zeros(50, dtype=np.int64), np.zeros(40, dtype=np.int64)
        )
        reference = GraceHashJoin().run(small_cluster, table_r, table_s)
        assert reference.output_rows == 2000
        for algorithm in (TrackJoin3(), TrackJoin4(), TrackingAwareHashJoin()):
            assert_same_output(reference, algorithm.run(small_cluster, table_r, table_s))

    def test_single_node_cluster(self):
        cluster = Cluster(1)
        table_r, table_s = make_tables(
            cluster, np.array([1, 2, 2]), np.array([2, 3])
        )
        for algorithm in all_algorithms():
            result = algorithm.run(cluster, table_r, table_s)
            assert result.output_rows == 2
            assert result.network_bytes == 0.0, algorithm.name


class TestTrafficInvariants:
    def test_single_node_no_traffic(self):
        cluster = Cluster(1)
        table_r, table_s = make_tables(cluster, np.arange(100), np.arange(100))
        result = TrackJoin4().run(cluster, table_r, table_s)
        assert result.network_bytes == 0.0

    def test_hash_join_moves_most_tuples(self, small_cluster, small_tables):
        """Grace hash join moves ~(1 - 1/N) of both tables."""
        table_r, table_s = small_tables
        spec = JoinSpec()
        result = GraceHashJoin().run(small_cluster, table_r, table_s, spec)
        expected = 0.75 * (
            table_r.total_rows * table_r.schema.tuple_width(spec.encoding)
            + table_s.total_rows * table_s.schema.tuple_width(spec.encoding)
        )
        moved = result.class_bytes(MessageClass.R_TUPLES) + result.class_bytes(
            MessageClass.S_TUPLES
        )
        assert moved == pytest.approx(expected, rel=0.1)

    def test_broadcast_replicates_table(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        spec = JoinSpec()
        result = BroadcastJoin("R").run(small_cluster, table_r, table_s, spec)
        expected = (
            table_r.total_rows
            * table_r.schema.tuple_width(spec.encoding)
            * (small_cluster.num_nodes - 1)
        )
        assert result.class_bytes(MessageClass.R_TUPLES) == pytest.approx(expected)
        assert result.class_bytes(MessageClass.S_TUPLES) == 0.0

    def test_track_join_payload_never_exceeds_simple_variants(self, small_cluster):
        """4TJ payload traffic <= each 2TJ direction and 3TJ (optimality)."""
        rng = np.random.default_rng(3)
        table_r, table_s = make_tables(
            small_cluster,
            rng.integers(0, 150, 1200),
            rng.integers(50, 250, 1800),
            seed=5,
        )
        spec = JoinSpec()

        def payload_bytes(result):
            return result.class_bytes(MessageClass.R_TUPLES) + result.class_bytes(
                MessageClass.S_TUPLES
            )

        four = payload_bytes(TrackJoin4().run(small_cluster, table_r, table_s, spec))
        for simpler in (TrackJoin2("RS"), TrackJoin2("SR"), TrackJoin3()):
            other = payload_bytes(simpler.run(small_cluster, table_r, table_s, spec))
            assert four <= other + 1e-6, simpler.name

    def test_perfect_collocation_no_payload_traffic(self):
        """Matching tuples all on the same node: 4TJ ships no payloads."""
        cluster = Cluster(4)
        keys = np.arange(400, dtype=np.int64)
        from repro.storage import by_key_hash, Schema

        nodes = by_key_hash(keys, 4, seed=99)
        schema = Schema.with_widths(32, 64)
        table_r = cluster.table_from_assignment("R", schema, keys, nodes)
        table_s = cluster.table_from_assignment("S", schema, keys, nodes)
        result = TrackJoin4().run(cluster, table_r, table_s)
        assert result.class_bytes(MessageClass.R_TUPLES) == 0.0
        assert result.class_bytes(MessageClass.S_TUPLES) == 0.0
        assert result.output_rows == 400

    def test_traffic_scales_linearly(self):
        """Doubling table size ~doubles every algorithm's traffic."""
        for algorithm_factory in (GraceHashJoin, TrackJoin4):
            totals = []
            for size in (2000, 4000):
                cluster = Cluster(4)
                rng = np.random.default_rng(11)
                table_r, table_s = make_tables(
                    cluster,
                    rng.integers(0, size // 2, size),
                    rng.integers(0, size // 2, size),
                    seed=1,
                )
                result = algorithm_factory().run(cluster, table_r, table_s)
                totals.append(result.network_bytes)
            assert totals[1] == pytest.approx(2 * totals[0], rel=0.05)

    def test_no_pending_messages_after_join(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        for algorithm in all_algorithms():
            algorithm.run(small_cluster, table_r, table_s)
            assert small_cluster.network.pending_messages() == 0


class TestJoinConfig:
    def test_wrong_cluster_size_rejected(self, small_tables):
        table_r, table_s = small_tables
        other = Cluster(7)
        with pytest.raises(JoinConfigError):
            GraceHashJoin().run(other, table_r, table_s)

    def test_materialize_false_keeps_counts(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        spec = JoinSpec(materialize=False)
        lean = GraceHashJoin().run(small_cluster, table_r, table_s, spec)
        full = GraceHashJoin().run(small_cluster, table_r, table_s)
        assert lean.output is None
        assert lean.output_rows == full.output_rows
        with pytest.raises(JoinConfigError):
            lean.gathered_output()

    def test_invalid_broadcast_side(self):
        with pytest.raises(ValueError):
            BroadcastJoin("X")

    def test_invalid_track2_direction(self):
        with pytest.raises(ValueError):
            TrackJoin2("XY")

    def test_node_balance_diagnostics(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        result = GraceHashJoin().run(small_cluster, table_r, table_s)
        balance = result.node_balance()
        assert balance["send_skew"] >= 1.0
        assert balance["max_sent"] >= balance["mean_sent"]
