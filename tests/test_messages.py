"""Tests for track join metadata message sizing (Section 2.4 options)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.messages import location_message_bytes, tracking_message_bytes


class TestTrackingMessages:
    def test_plain_size(self):
        keys = np.arange(100, dtype=np.int64)
        assert tracking_message_bytes(keys, key_width=4.0, count_width=1.0) == 500.0

    def test_without_counts(self):
        keys = np.arange(10, dtype=np.int64)
        assert tracking_message_bytes(keys, 4.0, 0.0) == 40.0

    def test_delta_keys_dense(self):
        """Dense key runs delta-compress to ~1 byte per key."""
        keys = np.arange(1000, dtype=np.int64)
        size = tracking_message_bytes(keys, 4.0, 1.0, delta_keys=True)
        assert size == pytest.approx(1000 + 1000)  # 1 B delta + 1 B count

    def test_delta_never_reported_for_empty(self):
        empty = np.array([], dtype=np.int64)
        assert tracking_message_bytes(empty, 4.0, 1.0, delta_keys=True) == 0.0


class TestLocationMessages:
    def test_plain_repeats_node_per_key(self):
        assert location_message_bytes(10, 3, key_width=4.0, location_width=1.0) == 50.0

    def test_grouped_pays_node_once_per_destination(self):
        grouped = location_message_bytes(
            10, 3, key_width=4.0, location_width=1.0, group_by_node=True
        )
        assert grouped == 43.0

    def test_grouped_never_larger(self):
        for pairs in (1, 5, 100):
            for distinct in (1, min(pairs, 7)):
                plain = location_message_bytes(pairs, distinct, 4.0, 1.0)
                grouped = location_message_bytes(pairs, distinct, 4.0, 1.0, True)
                assert grouped <= plain
