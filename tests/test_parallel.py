"""Tests for the parallel execution engine.

Covers the executor hierarchy, shared-memory buffers, phase barrier
semantics on the cluster, and the headline determinism guarantee: a
join's traffic ledger, profile, and output are bit-identical for any
worker count.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import Cluster, GraceHashJoin, TrackJoin4, BroadcastJoin
from repro.cluster.network import MessageClass
from repro.errors import FaultExhaustedError, ParallelError, ValidationError
from repro.joins import LateMaterializationHashJoin, TrackingAwareHashJoin
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    SharedArray,
    ThreadExecutor,
    default_workers,
    resolve_executor,
    set_default_workers,
)
from repro.parallel.executor import WORKERS_ENV

from conftest import canonical_output, make_tables


def _square(value: int) -> int:
    """Module-level so the process pool can pickle it."""
    return value * value


def _die_once(args: tuple[str, int]) -> int:
    """Kill the worker process the first time, succeed afterwards."""
    import os

    flag, value = args
    if not os.path.exists(flag):
        with open(flag, "w") as handle:
            handle.write("dead")
        os._exit(1)
    return value * 2


def _always_die(_value: int) -> None:
    """A worker that never survives its task."""
    import os

    os._exit(1)


# -- executors -----------------------------------------------------------


class TestExecutors:
    def test_serial_map_preserves_order(self):
        executor = SerialExecutor()
        assert executor.map(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_thread_map_preserves_order(self):
        executor = ThreadExecutor(workers=4)
        try:
            assert executor.map(_square, range(100)) == [i * i for i in range(100)]
        finally:
            executor.close()

    def test_thread_map_propagates_exception(self):
        executor = ThreadExecutor(workers=2)

        def boom(i):
            if i == 3:
                raise ValueError("task 3 failed")
            return i

        try:
            with pytest.raises(ValueError, match="task 3 failed"):
                executor.map(boom, range(8))
        finally:
            executor.close()

    def test_process_map(self):
        executor = ProcessExecutor(workers=2)
        try:
            assert executor.map(_square, range(5)) == [0, 1, 4, 9, 16]
        finally:
            executor.close()

    def test_resolve_executor(self):
        serial = resolve_executor(1)
        assert isinstance(serial, SerialExecutor)
        threaded = resolve_executor(4)
        assert isinstance(threaded, ThreadExecutor)
        threaded.close()
        procs = resolve_executor(2, backend="process")
        assert isinstance(procs, ProcessExecutor)
        procs.close()
        with pytest.raises(ParallelError):
            resolve_executor(2, backend="carrier-pigeon")

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        set_default_workers(None)
        assert default_workers() == 1
        monkeypatch.setenv(WORKERS_ENV, "6")
        assert default_workers() == 6
        set_default_workers(3)
        assert default_workers() == 3
        set_default_workers(None)
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert default_workers() == 1

    def test_malformed_env_falls_back_to_serial_with_warning(self, monkeypatch):
        set_default_workers(None)
        monkeypatch.setenv(WORKERS_ENV, "banana")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert default_workers() == 1
        monkeypatch.setenv(WORKERS_ENV, "-3")
        with pytest.warns(RuntimeWarning, match="must be >= 1"):
            assert default_workers() == 1

    def test_explicit_workers_validation(self):
        with pytest.raises(ValidationError):
            resolve_executor(0)
        with pytest.raises(ValidationError):
            resolve_executor("four")
        with pytest.raises(ValidationError):
            ThreadExecutor(workers=1.5)
        with pytest.raises(ValidationError):
            ProcessExecutor(workers=True)
        with pytest.raises(ValidationError):
            set_default_workers(-1)
        # ValidationError still is a ValueError, so parsers that caught
        # the builtin keep working.
        with pytest.raises(ValueError):
            resolve_executor(0)
        # Integer-valued floats (a CLI parser artifact) are accepted.
        assert resolve_executor(1.0).workers == 1


class TestProcessSupervisor:
    def test_dead_worker_respawns_and_resubmits(self, tmp_path):
        executor = ProcessExecutor(workers=2, max_respawns=2)
        flag = str(tmp_path / "worker-died")
        try:
            results = executor.map(_die_once, [(flag, i) for i in range(4)])
        finally:
            executor.close()
        assert results == [0, 2, 4, 6]

    def test_respawn_budget_exhaustion_raises(self):
        executor = ProcessExecutor(workers=2, max_respawns=1)
        try:
            with pytest.raises(FaultExhaustedError) as excinfo:
                executor.map(_always_die, range(2))
        finally:
            executor.close()
        assert excinfo.value.attempts == 2

    def test_negative_respawn_budget_rejected(self):
        with pytest.raises(ValidationError):
            ProcessExecutor(workers=2, max_respawns=-1)


# -- shared memory -------------------------------------------------------


class TestSharedArray:
    def test_roundtrip_and_pickle(self):
        data = np.arange(256, dtype=np.int64).reshape(16, 16)
        shared = SharedArray.copy_from(data)
        try:
            assert np.array_equal(shared.array(), data)
            # Pickling transfers only the addressing triple; the attached
            # copy sees the same physical pages.
            clone = pickle.loads(pickle.dumps(shared))
            try:
                view = clone.array()
                assert np.array_equal(view, data)
                view[0, 0] = -1
                assert shared.array()[0, 0] == -1
            finally:
                del view
                clone.close()
        finally:
            shared.unlink()
            shared.close()

    def test_unlink_destroys_block(self):
        shared = SharedArray.copy_from(np.ones(8))
        name = shared.name
        shared.close()
        shared.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArray(name, (8,), "<f8").array()


# -- cluster phases ------------------------------------------------------


class TestClusterPhases:
    def test_run_phase_task_forms(self):
        cluster = Cluster(4)
        assert cluster.run_phase(lambda node: node) == [0, 1, 2, 3]
        assert cluster.run_phase(lambda task: task * 10, tasks=3) == [0, 10, 20]
        assert cluster.run_phase(lambda task: -task, tasks=[5, 2]) == [-5, -2]

    def test_phase_exception_aborts_network_phase(self):
        cluster = Cluster(2)

        def bad(node):
            cluster.network.send(node, 0, MessageClass.RIDS, 1.0)
            raise RuntimeError("phase failed")

        with pytest.raises(RuntimeError):
            cluster.run_phase(bad)
        # The aborted phase unwound cleanly: no staged state survives and
        # the network accepts a new phase.
        assert cluster.network.pending_messages() == 0
        assert cluster.network.ledger.total_bytes == 0.0
        assert cluster.run_phase(lambda node: node) == [0, 1]

    def test_set_workers(self):
        cluster = Cluster(2, workers=1)
        assert cluster.workers == 1
        cluster.set_workers(4)
        assert cluster.workers == 4
        assert cluster.run_phase(lambda node: node) == [0, 1]
        cluster.set_workers(1)
        assert cluster.workers == 1


# -- determinism ---------------------------------------------------------


def _ledger_fingerprint(result):
    ledger = result.traffic
    return (
        sorted((c.name, b) for c, b in ledger.by_class.items()),
        sorted(ledger.by_link.items()),
        sorted(ledger.sent_by_node.items()),
        sorted(ledger.received_by_node.items()),
        ledger.local_bytes,
        ledger.message_count,
    )


DETERMINISM_ALGORITHMS = [
    GraceHashJoin(),
    BroadcastJoin("S"),
    TrackJoin4(),
    LateMaterializationHashJoin(),
    TrackingAwareHashJoin(),
]


@pytest.mark.parametrize(
    "algorithm", DETERMINISM_ALGORITHMS, ids=lambda a: type(a).__name__ + getattr(a, "broadcast", "")
)
def test_join_deterministic_across_worker_counts(algorithm):
    """Serial and 2/4/8-worker runs agree byte-for-byte (tentpole guarantee)."""
    cluster = Cluster(8)
    rng = np.random.default_rng(42)
    table_r, table_s = make_tables(
        cluster,
        rng.integers(0, 500, 2000),
        rng.integers(250, 750, 3000),
    )
    reference = None
    for workers in (1, 2, 4, 8):
        cluster.set_workers(workers)
        result = algorithm.run(cluster, table_r, table_s)
        fingerprint = (
            _ledger_fingerprint(result),
            canonical_output(result).tobytes(),
        )
        if reference is None:
            reference = fingerprint
        else:
            assert fingerprint == reference, f"workers={workers} diverged"
    cluster.set_workers(1)


def test_profile_deterministic_across_worker_counts():
    """Per-node profile steps also commit in task order at the barrier."""
    cluster = Cluster(8)
    rng = np.random.default_rng(9)
    table_r, table_s = make_tables(
        cluster,
        rng.integers(0, 300, 1200),
        rng.integers(100, 400, 1800),
    )

    def profile_steps(workers):
        cluster.set_workers(workers)
        result = TrackJoin4().run(cluster, table_r, table_s)
        return [
            (step.name, step.kind, step.rate_class, step.per_node_bytes.tobytes())
            for step in result.profile.steps
        ]

    try:
        reference = profile_steps(1)
        for workers in (2, 8):
            assert profile_steps(workers) == reference
    finally:
        cluster.set_workers(1)
