"""API surface checks: exports, error hierarchy, spec immutability."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro
from repro import JoinSpec
from repro.errors import (
    CostModelError,
    JoinConfigError,
    NetworkError,
    PlacementError,
    ReproError,
    ScheduleError,
    SchemaError,
    WorkloadError,
)


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_resolve(self):
        import repro.costmodel
        import repro.experiments
        import repro.joins
        import repro.mapreduce
        import repro.query
        import repro.storage
        import repro.workloads

        for module in (
            repro.costmodel,
            repro.experiments,
            repro.joins,
            repro.mapreduce,
            repro.query,
            repro.storage,
            repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version(self):
        assert repro.__version__


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            SchemaError,
            PlacementError,
            NetworkError,
            JoinConfigError,
            ScheduleError,
            CostModelError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")


class TestJoinSpec:
    def test_frozen(self):
        spec = JoinSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.location_width = 9

    def test_defaults_match_paper(self):
        spec = JoinSpec()
        assert spec.location_width == 1.0  # 1-byte node ids
        assert spec.count_width_r == 1.0  # workload X's counter width
        assert spec.encoding.name == "dictionary"
        assert spec.materialize is True

    def test_replace_produces_variant(self):
        spec = JoinSpec()
        wider = dataclasses.replace(spec, location_width=4.0)
        assert wider.location_width == 4.0
        assert spec.location_width == 1.0


class TestRunAlgorithmsHelper:
    def test_custom_algorithm_list_and_anchor(self):
        from repro import GraceHashJoin
        from repro.experiments.figures import run_algorithms, _figure_spec
        from repro.workloads import unique_keys_workload

        workload = unique_keys_workload(scaled_tuples=5_000)
        group = run_algorithms(
            workload,
            _figure_spec(),
            algorithms=[GraceHashJoin()],
            paper={"HJ": 123.0},
        )
        assert len(group.rows) == 1
        assert group.rows[0].label == "HJ"
        assert group.rows[0].paper == 123.0
        assert set(group.rows[0].breakdown) == {
            "Keys & Counts",
            "Keys & Nodes",
            "R Tuples",
            "S Tuples",
        }

    def test_output_row_mismatch_raises(self):
        from repro import GraceHashJoin
        from repro.experiments.figures import run_algorithms, _figure_spec
        from repro.workloads import unique_keys_workload

        workload = unique_keys_workload(scaled_tuples=1_000)
        workload.expected_output_rows = 999  # wrong on purpose
        with pytest.raises(AssertionError):
            run_algorithms(workload, _figure_spec(), algorithms=[GraceHashJoin()])
