"""Unit tests for schemas, tables, and placement policies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.encoding import DictionaryEncoding, FixedByteEncoding, VarByteEncoding
from repro.errors import PlacementError, SchemaError
from repro.storage import (
    Column,
    DistributedTable,
    LocalPartition,
    Schema,
    by_key_hash,
    collocated_fraction,
    pattern_nodes,
    random_uniform,
    round_robin,
    shuffled,
)


class TestColumn:
    def test_needs_bits_or_char_length(self):
        with pytest.raises(SchemaError):
            Column("bad")

    def test_rejects_nonpositive_bits(self):
        with pytest.raises(SchemaError):
            Column("bad", bits=0)

    def test_char_column(self):
        col = Column("name", char_length=23)
        assert col.is_char

    def test_decimal_digits_derived_from_bits(self):
        # 30 bits ~ 9.03 decimal digits -> 10.
        assert Column("k", bits=30).effective_decimal_digits() == 10

    def test_explicit_decimal_digits_win(self):
        assert Column("k", bits=30, decimal_digits=12).effective_decimal_digits() == 12


class TestSchema:
    def test_widths_under_encodings(self):
        schema = Schema(
            (Column("k", bits=30),),
            (Column("a", bits=6), Column("b", bits=24)),
        )
        dictionary = DictionaryEncoding()
        assert schema.key_width(dictionary) == pytest.approx(30 / 8)
        assert schema.payload_width(dictionary) == pytest.approx(30 / 8)
        assert schema.tuple_width(dictionary) == pytest.approx(60 / 8)
        fixed = FixedByteEncoding()
        assert schema.key_width(fixed) == 4
        assert schema.payload_width(fixed) == 1 + 4

    def test_with_widths_shortcut(self):
        schema = Schema.with_widths(32, 128)
        assert schema.tuple_width(DictionaryEncoding()) == pytest.approx(20.0)

    def test_with_widths_zero_payload(self):
        schema = Schema.with_widths(32, 0)
        assert schema.payload_columns == ()

    def test_requires_key(self):
        with pytest.raises(SchemaError):
            Schema(key_columns=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Column("k", bits=8),), (Column("k", bits=8),))

    def test_multi_column_key(self):
        schema = Schema((Column("k1", bits=16), Column("k2", bits=16)), ())
        assert schema.key_width(DictionaryEncoding()) == pytest.approx(4.0)


class TestLocalPartition:
    def test_column_length_checked(self):
        with pytest.raises(SchemaError):
            LocalPartition(keys=np.arange(3), columns={"x": np.arange(2)})

    def test_take(self):
        part = LocalPartition(keys=np.array([5, 6, 7]), columns={"v": np.array([1, 2, 3])})
        taken = part.take(np.array([2, 0]))
        assert np.array_equal(taken.keys, [7, 5])
        assert np.array_equal(taken.columns["v"], [3, 1])

    def test_concat_mismatched_columns_rejected(self):
        a = LocalPartition(keys=np.array([1]), columns={"x": np.array([1])})
        b = LocalPartition(keys=np.array([2]), columns={"y": np.array([2])})
        with pytest.raises(SchemaError):
            LocalPartition.concat([a, b])

    def test_concat_empty_list(self):
        assert LocalPartition.concat([]).num_rows == 0


class TestDistributedTable:
    def test_from_assignment_partitions_rows(self):
        keys = np.array([10, 11, 12, 13])
        nodes = np.array([1, 0, 1, 2])
        table = DistributedTable.from_assignment(
            "T", Schema.with_widths(32, 32), keys, nodes, num_nodes=3
        )
        assert table.total_rows == 4
        assert np.array_equal(table.partitions[0].keys, [11])
        assert sorted(table.partitions[1].keys.tolist()) == [10, 12]
        assert np.array_equal(table.partitions[2].keys, [13])

    def test_rid_column_synthesized(self):
        table = DistributedTable.from_assignment(
            "T", Schema.with_widths(32, 32), np.array([1, 2]), np.array([0, 1]), 2
        )
        assert table.payload_names == ("rid",)
        gathered = table.gathered()
        assert sorted(gathered.columns["rid"].tolist()) == [0, 1]

    def test_bad_assignment_rejected(self):
        with pytest.raises(PlacementError):
            DistributedTable.from_assignment(
                "T", Schema.with_widths(32, 0), np.array([1]), np.array([5]), 2
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(PlacementError):
            DistributedTable.from_assignment(
                "T", Schema.with_widths(32, 0), np.array([1, 2]), np.array([0]), 2
            )

    def test_node_sizes(self):
        table = DistributedTable.from_assignment(
            "T", Schema.with_widths(32, 0), np.arange(6), round_robin(6, 3), 3
        )
        assert np.array_equal(table.node_sizes(), [2, 2, 2])


class TestPlacement:
    def test_round_robin(self):
        assert np.array_equal(round_robin(5, 2), [0, 1, 0, 1, 0])

    def test_random_uniform_range_and_determinism(self):
        a = random_uniform(1000, 8, seed=3)
        b = random_uniform(1000, 8, seed=3)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 8

    def test_by_key_hash_collocates_equal_keys(self):
        keys = np.array([7, 7, 7, 9, 9])
        nodes = by_key_hash(keys, 4)
        assert len(set(nodes[:3].tolist())) == 1
        assert len(set(nodes[3:].tolist())) == 1

    def test_shuffled_changes_assignment(self):
        original = np.zeros(1000, dtype=np.int64)
        result = shuffled(original, 8, seed=1)
        assert len(np.unique(result)) > 1

    def test_pattern_nodes_collocated(self):
        key_index, node, _pool = pattern_nodes(100, (5,), 16, seed=0)
        assert len(key_index) == 500
        for k in range(100):
            nodes_of_key = node[key_index == k]
            assert len(set(nodes_of_key.tolist())) == 1

    def test_pattern_nodes_spread(self):
        key_index, node, _pool = pattern_nodes(50, (1, 1, 1, 1, 1), 16, seed=0)
        for k in range(50):
            nodes_of_key = node[key_index == k]
            assert len(set(nodes_of_key.tolist())) == 5

    def test_pattern_nodes_partial(self):
        key_index, node, _pool = pattern_nodes(50, (2, 2, 1), 16, seed=0)
        for k in range(50):
            nodes_of_key = node[key_index == k]
            counts = sorted(c for c in np.bincount(nodes_of_key, minlength=16) if c > 0)
            assert counts == [1, 2, 2]

    def test_pattern_nodes_shared_pool_collocates(self):
        _, node_a, pool = pattern_nodes(30, (5,), 8, seed=1)
        _, node_b, _ = pattern_nodes(30, (5,), 8, node_pool=pool)
        assert np.array_equal(node_a, node_b)

    def test_pattern_too_many_groups(self):
        with pytest.raises(PlacementError):
            pattern_nodes(10, (1, 1, 1), 2)

    def test_collocated_fraction_full(self):
        keys = np.arange(100, dtype=np.int64)
        anchors = np.full(200, 3, dtype=np.int64)
        nodes = collocated_fraction(keys, anchors, 1.0, 8, seed=0)
        assert np.all(nodes == 3)

    def test_collocated_fraction_invalid(self):
        with pytest.raises(PlacementError):
            collocated_fraction(np.arange(5), np.zeros(10, dtype=np.int64), 1.5, 4)

    @given(st.integers(1, 64), st.integers(1, 8))
    def test_round_robin_balance(self, rows, nodes):
        counts = np.bincount(round_robin(rows, nodes), minlength=nodes)
        assert counts.max() - counts.min() <= 1
