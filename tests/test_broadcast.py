"""Tests specific to the broadcast join baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BroadcastJoin, Cluster, GraceHashJoin, JoinSpec

from conftest import assert_same_output, make_tables


class TestBroadcastJoin:
    def test_each_direction_moves_only_its_table(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        spec = JoinSpec()
        for side, moved in (("R", table_r), ("S", table_s)):
            result = BroadcastJoin(side).run(small_cluster, table_r, table_s, spec)
            expected = (
                moved.total_rows
                * moved.schema.tuple_width(spec.encoding)
                * (small_cluster.num_nodes - 1)
            )
            assert result.network_bytes == pytest.approx(expected)

    def test_direction_asymmetry(self, small_cluster, small_tables):
        """Broadcasting the smaller/narrower table is cheaper."""
        table_r, table_s = small_tables  # S is bigger and wider
        r_cast = BroadcastJoin("R").run(small_cluster, table_r, table_s)
        s_cast = BroadcastJoin("S").run(small_cluster, table_r, table_s)
        assert r_cast.network_bytes < s_cast.network_bytes
        assert_same_output(r_cast, s_cast)

    def test_cheapest_for_tiny_table(self):
        """With a tiny R, broadcast beats hash join (the optimizer case)."""
        cluster = Cluster(4)
        table_r, table_s = make_tables(
            cluster, np.arange(50), np.random.default_rng(0).integers(0, 50, 20_000)
        )
        broadcast = BroadcastJoin("R").run(cluster, table_r, table_s)
        hashed = GraceHashJoin().run(cluster, table_r, table_s)
        assert broadcast.network_bytes < hashed.network_bytes
        assert_same_output(broadcast, hashed)

    def test_output_distribution_follows_staying_table(self, small_cluster, small_tables):
        """Results are produced where the non-broadcast side lives."""
        table_r, table_s = small_tables
        result = BroadcastJoin("R").run(small_cluster, table_r, table_s)
        for node, partition in enumerate(result.output):
            # Every output S rid must be a local S row of this node.
            local_s_rids = set(table_s.partitions[node].columns["rid"].tolist())
            assert set(partition.columns["s.rid"].tolist()) <= local_s_rids

    def test_broadcast_traffic_independent_of_placement(self, small_cluster):
        """Replication cost never depends on where tuples start."""
        rng = np.random.default_rng(2)
        keys_r = rng.integers(0, 300, 2000)
        keys_s = rng.integers(0, 300, 3000)
        results = []
        for seed in (1, 2, 3):
            table_r, table_s = make_tables(small_cluster, keys_r, keys_s, seed=seed)
            results.append(
                BroadcastJoin("R").run(small_cluster, table_r, table_s).network_bytes
            )
        assert results[0] == results[1] == results[2]
