"""Unit tests for the Cluster container and Node scratch state."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, Schema
from repro.cluster import MessageClass
from repro.errors import JoinConfigError, NetworkError


class TestCluster:
    def test_construction(self):
        cluster = Cluster(5)
        assert cluster.num_nodes == 5
        assert len(cluster.nodes) == 5
        assert [node.index for node in cluster.nodes] == list(range(5))

    def test_zero_nodes_rejected(self):
        with pytest.raises(NetworkError):
            Cluster(0)

    def test_reset_clears_state_and_ledger(self):
        cluster = Cluster(2)
        cluster.nodes[0].state["x"] = 1
        cluster.network.send(0, 1, MessageClass.R_TUPLES, 10.0)
        cluster.network.deliver(1)
        cluster.reset()
        assert cluster.nodes[0].state == {}
        assert cluster.network.ledger.total_bytes == 0.0

    def test_table_from_assignment(self):
        cluster = Cluster(3)
        table = cluster.table_from_assignment(
            "T",
            Schema.with_widths(32, 32),
            np.array([1, 2, 3]),
            np.array([0, 1, 2]),
        )
        assert table.num_nodes == 3
        assert table.total_rows == 3

    def test_check_table_size_mismatch(self):
        cluster = Cluster(3)
        other = Cluster(2)
        table = other.table_from_assignment(
            "T", Schema.with_widths(32, 0), np.array([1]), np.array([0])
        )
        with pytest.raises(JoinConfigError):
            cluster.check_table(table)

    def test_node_clear(self):
        cluster = Cluster(1)
        cluster.nodes[0].state["scratch"] = [1, 2, 3]
        cluster.nodes[0].clear()
        assert cluster.nodes[0].state == {}
