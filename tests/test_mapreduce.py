"""Tests for the MapReduce engine and the joins built on it."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, GraceHashJoin, JoinSpec, TrackJoin2
from repro.cluster import MessageClass
from repro.mapreduce import Channel, MapReduceJob, mr_hash_join, mr_track_join
from repro.storage import LocalPartition

from conftest import canonical_output, make_tables


def mr_canonical(result_or_partition):
    """Canonical array for MR join outputs (keys, r.rid, s.rid)."""
    part = result_or_partition.gathered()
    arr = np.stack([part.keys, part.columns["r.rid"], part.columns["s.rid"]])
    return arr[:, np.lexsort(arr)]


class TestEngine:
    def test_word_count_style_job(self):
        """The canonical MR example: count occurrences per key."""
        cluster = Cluster(3)
        inputs = [
            LocalPartition(keys=np.array([1, 2, 2]), columns={}),
            LocalPartition(keys=np.array([2, 3]), columns={}),
            LocalPartition(keys=np.array([1]), columns={}),
        ]

        def mapper(node, partition):
            return LocalPartition(
                keys=partition.keys,
                columns={"one": np.ones(partition.num_rows, dtype=np.int64)},
            )

        def reducer(node, groups):
            records = groups["words"]
            if records.num_rows == 0:
                return LocalPartition.empty(("count",))
            from repro.util import segment_boundaries

            starts = segment_boundaries(records.keys)
            return LocalPartition(
                keys=records.keys[starts],
                columns={"count": np.add.reduceat(records.columns["one"], starts)},
            )

        job = MapReduceJob(
            channels=[Channel("words", inputs, mapper, record_width=8.0)],
            reducer=reducer,
        )
        result = job.run(cluster)
        out = result.gathered()
        counts = dict(zip(out.keys.tolist(), out.columns["count"].tolist()))
        assert counts == {1: 2, 2: 3, 3: 1}
        assert result.network_bytes > 0

    def test_partitioner_length_checked(self):
        cluster = Cluster(2)
        inputs = [LocalPartition(keys=np.array([1, 2]), columns={})] + [
            LocalPartition.empty()
        ]

        def bad_partitioner(keys):
            return np.array([0])

        job = MapReduceJob(
            channels=[
                Channel(
                    "x",
                    inputs,
                    lambda n, p: p,
                    record_width=4.0,
                    partitioner=bad_partitioner,
                )
            ],
            reducer=lambda n, g: LocalPartition.empty(),
        )
        with pytest.raises(ValueError):
            job.run(cluster)

    def test_expanding_partitioner_broadcasts(self):
        """A (record_idx, dest) partitioner can replicate records."""
        cluster = Cluster(3)
        inputs = [LocalPartition(keys=np.array([7]), columns={})] + [
            LocalPartition.empty() for _ in range(2)
        ]

        def everywhere(keys):
            idx = np.repeat(np.arange(len(keys)), 3)
            dest = np.tile(np.arange(3), len(keys))
            return idx, dest

        received_rows = []

        def reducer(node, groups):
            received_rows.append(groups["x"].num_rows)
            return LocalPartition.empty()

        job = MapReduceJob(
            channels=[
                Channel("x", inputs, lambda n, p: p, 4.0, partitioner=everywhere)
            ],
            reducer=reducer,
        )
        job.run(cluster)
        assert received_rows == [1, 1, 1]


class TestMRHashJoin:
    def test_output_matches_native(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        native = GraceHashJoin().run(small_cluster, table_r, table_s)
        mr = mr_hash_join(small_cluster, table_r, table_s)
        assert np.array_equal(mr_canonical(mr), canonical_output(native))

    def test_shuffle_bytes_match_native_transfers(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        spec = JoinSpec()
        native = GraceHashJoin().run(small_cluster, table_r, table_s, spec)
        mr = mr_hash_join(small_cluster, table_r, table_s, spec)
        assert mr.network_bytes == pytest.approx(native.network_bytes)


class TestMRTrackJoin:
    def test_output_matches_native(self, small_cluster, small_tables):
        table_r, table_s = small_tables
        native = TrackJoin2("RS").run(small_cluster, table_r, table_s)
        _tracking, joined = mr_track_join(small_cluster, table_r, table_s)
        assert np.array_equal(mr_canonical(joined), canonical_output(native))

    def test_traffic_matches_native_track_join(self, small_cluster, small_tables):
        """Fine-grained tracking on MapReduce costs the same bytes as the
        native operator — the Section 6 claim, measured."""
        table_r, table_s = small_tables
        spec = JoinSpec()
        native = TrackJoin2("RS").run(small_cluster, table_r, table_s, spec)
        tracking, joined = mr_track_join(small_cluster, table_r, table_s, spec)
        combined = tracking.traffic.merged_with(joined.traffic)
        assert combined.total_bytes == pytest.approx(native.network_bytes)
        # Per-class agreement, not just totals.
        for category in (
            MessageClass.KEYS_COUNTS,
            MessageClass.KEYS_NODES,
            MessageClass.R_TUPLES,
        ):
            assert combined.by_class.get(category, 0.0) == pytest.approx(
                native.class_bytes(category)
            ), category

    def test_mr_track_join_beats_mr_hash_join_on_wide_payloads(self, small_cluster):
        table_r, table_s = make_tables(
            small_cluster,
            np.arange(3000),
            np.arange(3000),
            payload_bits_r=64,
            payload_bits_s=512,
            seed=6,
        )
        hash_result = mr_hash_join(small_cluster, table_r, table_s)
        tracking, joined = mr_track_join(small_cluster, table_r, table_s)
        combined = tracking.network_bytes + joined.network_bytes
        assert combined < hash_result.network_bytes
