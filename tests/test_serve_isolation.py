"""S3: concurrent queries are byte-identical to solo runs.

Every query the service runs — at any worker count, cold-compiled or
from the plan cache — must produce the same traffic ledger (per message
class and per link), the same operator stats, the same deterministic
profile steps, and the same output rows as the identical query executed
alone on a private cluster.  This is the isolation contract that makes
the serve layer's multiplexing safe: sharing the warm executor and the
compiled plan shares *capacity*, never *state*.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, JoinSpec
from repro.query import compile_plan
from repro.serve import QueryRequest, QueryService
from repro.serve.bench import serve_query_mix, serve_tables

NUM_NODES = 4
WORKER_COUNTS = (1, 4, 8)


def canonical_result(result) -> tuple:
    """Everything deterministic about a QueryResult, bytes included.

    Profile ``steps`` are part of the signature (they are committed in
    task order, so they are bit-identical across worker counts);
    wall-clock ``phase_timings`` are explicitly excluded — they are the
    one non-deterministic field.
    """
    ledger_by_class = tuple(
        sorted((cls.name, bytes_) for cls, bytes_ in result.traffic.by_class.items())
    )
    ledger_by_link = tuple(sorted(result.traffic.by_link.items()))
    operators = tuple(
        (op.operator, op.output_rows, op.network_bytes, op.note)
        for op in result.operators
    )
    steps = tuple(
        (step.name, step.kind, step.rate_class, tuple(step.per_node_bytes.tolist()))
        for profile in result.profiles
        for step in profile.steps
    )
    gathered = result.table.gathered()
    names = sorted(gathered.columns)
    order = np.lexsort(
        tuple(gathered.columns[name] for name in reversed(names)) + (gathered.keys,)
    )
    rows = (
        tuple(gathered.keys[order].tolist()),
        tuple(
            (name, tuple(gathered.columns[name][order].tolist())) for name in names
        ),
    )
    return (ledger_by_class, ledger_by_link, operators, steps, rows)


@pytest.fixture(scope="module")
def tables():
    return serve_tables(num_nodes=NUM_NODES, scaled_tuples=1200, seed=5)


@pytest.fixture(scope="module")
def mix(tables):
    return serve_query_mix(tables)


@pytest.fixture(scope="module")
def solo_references(mix):
    """Each plan executed alone, cold, on a private serial cluster."""
    return [
        canonical_result(compile_plan(plan).run(Cluster(NUM_NODES), JoinSpec()))
        for plan in mix
    ]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_concurrent_queries_match_solo_runs(tables, mix, solo_references, workers):
    """Two waves (cold, then cached) at each worker count, all identical."""
    with QueryService(
        tables, workers=workers, backend="thread", max_inflight=4,
        max_queue=4 * len(mix),
    ) as service:
        tickets = service.submit_many(
            QueryRequest(plan=mix[i % len(mix)], tag=f"w{wave}-q{i}")
            for wave in (0, 1)
            for i in range(len(mix))
        )
        outcomes = service.drain(tickets)
        cache_stats = service.stats()["cache"]
    assert all(outcome.ok for outcome in outcomes), [
        outcome.error for outcome in outcomes if not outcome.ok
    ]
    for position, outcome in enumerate(outcomes):
        reference = solo_references[position % len(mix)]
        assert canonical_result(outcome.result) == reference, (
            f"{outcome.tag} diverged from its solo reference "
            f"(workers={workers}, cache_hit={outcome.cache_hit})"
        )
    # The second wave must have come from the plan cache.
    assert cache_stats["hits"] >= len(mix)
    assert any(outcome.cache_hit for outcome in outcomes[len(mix):])
    assert not any(outcome.cache_hit for outcome in outcomes[: len(mix)])


def test_cache_hit_path_identical_to_cold_compile(tables, mix, solo_references):
    """One query repeated: the cached rerun is byte-identical to cold."""
    plan = mix[3]
    with QueryService(tables, workers=1) as service:
        cold = service.submit(plan).outcome()
        warm = service.submit(plan).outcome()
    assert not cold.cache_hit and warm.cache_hit
    assert canonical_result(cold.result) == canonical_result(warm.result)
    assert canonical_result(warm.result) == solo_references[3]


def test_interleaved_distinct_queries_stay_isolated(tables, mix, solo_references):
    """A shuffled interleaving of different plans cross-checks ledgers.

    Queries with different traffic shapes run in flight together; each
    must land exactly on its own solo ledger, proving no query's bytes
    leak into another's accounting.
    """
    order = [3, 7, 2, 8, 4, 3, 7, 5, 6, 2]
    with QueryService(tables, workers=2, max_inflight=3, max_queue=32) as service:
        tickets = service.submit_many(
            QueryRequest(plan=mix[index], tag=f"i{i}")
            for i, index in enumerate(order)
        )
        outcomes = service.drain(tickets)
    for outcome, index in zip(outcomes, order):
        assert outcome.ok, outcome.error
        assert canonical_result(outcome.result) == solo_references[index]
