"""Tests for the concurrent query service: cache, pool, admission."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import Cluster, JoinSpec
from repro.costmodel import bump_stats_epoch, stats_epoch
from repro.errors import (
    AdmissionError,
    ParallelError,
    QueryTimeoutError,
    ValidationError,
)
from repro.query import Join, RunContext, Scan, compile_plan
from repro.query import executor as executor_module
from repro.query.predicates import Predicate
from repro.serve import (
    PlanCache,
    QueryRequest,
    QueryService,
    SharedExecutor,
    WarmExecutorPool,
)
from repro.serve.bench import serve_query_mix, serve_tables

NUM_NODES = 4


@pytest.fixture
def tables():
    return serve_tables(num_nodes=NUM_NODES, scaled_tuples=1500, seed=3)


def _join_plan(tables):
    return Join(
        Scan(tables["serve_orders"]), Scan(tables["serve_items"]), algorithm="HJ"
    )


class GatePredicate(Predicate):
    """Keep-all predicate that blocks execution until released.

    Lets tests hold a query inside ``execute`` deterministically (to
    fill the admission queue, force a mid-run deadline, or observe
    scheduling order).  ``repr`` is pinned so fingerprints stay stable
    across instances.
    """

    def __init__(self, label: str = "gate"):
        self.label = label
        self.event = threading.Event()
        self.entered = threading.Event()
        self.order: list[str] | None = None

    def mask(self, partition):
        # Record order only on the first partition: the scan applies
        # the predicate once per partition.
        if self.order is not None and not self.entered.is_set():
            self.order.append(self.label)
        self.entered.set()
        if not self.event.wait(timeout=30):
            raise TimeoutError(f"gate {self.label!r} never released")
        return np.ones(len(partition.keys), dtype=bool)

    def __repr__(self) -> str:
        return f"GatePredicate({self.label!r})"


class TestPlanFingerprint:
    def test_structurally_identical_plans_match(self, tables):
        assert _join_plan(tables).fingerprint() == _join_plan(tables).fingerprint()

    def test_algorithm_changes_fingerprint(self, tables):
        auto = Join(Scan(tables["serve_orders"]), Scan(tables["serve_items"]))
        assert auto.fingerprint() != _join_plan(tables).fingerprint()

    def test_epoch_bump_changes_fingerprint(self, tables):
        before = _join_plan(tables).fingerprint()
        bump_stats_epoch("serve_orders")
        assert _join_plan(tables).fingerprint() != before

    def test_table_names_in_scan_order(self, tables):
        assert _join_plan(tables).table_names() == ("serve_orders", "serve_items")


class TestPlanCache:
    def test_hit_miss_counters(self, tables):
        cache = PlanCache()
        entry, hit = cache.get_or_compile(_join_plan(tables))
        assert not hit and cache.misses == 1
        again, hit = cache.get_or_compile(_join_plan(tables))
        assert hit and cache.hits == 1
        assert again is entry
        assert cache.stats()["hit_rate"] == 0.5
        cache.close()

    def test_capacity_eviction(self, tables):
        cache = PlanCache(capacity=1)
        cache.get_or_compile(_join_plan(tables))
        cache.get_or_compile(Scan(tables["serve_orders"]))
        assert len(cache) == 1
        assert cache.evictions == 1
        cache.close()

    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            PlanCache(capacity=0)

    def test_epoch_bump_invalidates_matching_entries(self, tables):
        cache = PlanCache()
        cache.get_or_compile(_join_plan(tables))
        cache.get_or_compile(Scan(tables["serve_items"]))
        bump_stats_epoch("serve_orders")
        # Only the join (which scans serve_orders) is dropped.
        assert len(cache) == 1
        assert cache.invalidations == 1
        cache.close()

    def test_global_bump_invalidates_everything(self, tables):
        cache = PlanCache()
        cache.get_or_compile(_join_plan(tables))
        cache.get_or_compile(Scan(tables["serve_items"]))
        bump_stats_epoch()
        assert len(cache) == 0
        assert cache.invalidations == 2
        cache.close()

    def test_close_unregisters_listener(self, tables):
        cache = PlanCache()
        cache.get_or_compile(_join_plan(tables))
        cache.close()
        bump_stats_epoch("serve_orders")
        assert len(cache) == 1  # listener gone; entry untouched

    def test_epochs_are_per_table(self):
        base_r = stats_epoch("R_epoch_test")
        base_s = stats_epoch("S_epoch_test")
        bump_stats_epoch("R_epoch_test")
        assert stats_epoch("R_epoch_test") == base_r + 1
        assert stats_epoch("S_epoch_test") == base_s


class TestWarmExecutorPool:
    def test_lease_shares_one_executor(self):
        with WarmExecutorPool(workers=2, backend="thread") as pool:
            first, second = pool.lease(), pool.lease()
            assert first is second
            assert isinstance(first, SharedExecutor)
            assert pool.leases == 2

    def test_close_on_lease_is_noop(self):
        with WarmExecutorPool(workers=2, backend="thread") as pool:
            lease = pool.lease()
            lease.close()
            assert lease.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    def test_lease_after_shutdown_raises(self):
        pool = WarmExecutorPool(workers=1)
        pool.shutdown()
        with pytest.raises(ParallelError):
            pool.lease()

    def test_dispatch_accounting(self):
        with WarmExecutorPool(workers=1, warm=False) as pool:
            pool.lease().map(lambda x: x, [1, 2])
            stats = pool.stats()
            assert stats["dispatches"] == 1
            assert stats["tasks"] == 2


class TestQueryService:
    def test_matches_solo_run(self, tables):
        plan = _join_plan(tables)
        solo = compile_plan(plan).run(Cluster(NUM_NODES), JoinSpec())
        with QueryService(tables, workers=1, max_inflight=2) as service:
            result = service.submit(plan).result()
        assert result.output_rows == solo.output_rows
        assert result.network_bytes == solo.network_bytes

    def test_cache_hit_flagged_on_resubmission(self, tables):
        with QueryService(tables, workers=1) as service:
            cold = service.submit(_join_plan(tables)).outcome()
            warm = service.submit(_join_plan(tables)).outcome()
        assert not cold.cache_hit and warm.cache_hit
        assert cold.fingerprint == warm.fingerprint
        assert warm.run_seconds > 0.0

    def test_epoch_bump_retires_cached_plan(self, tables):
        with QueryService(tables, workers=1) as service:
            service.submit(_join_plan(tables)).outcome()
            bump_stats_epoch("serve_orders")
            after = service.submit(_join_plan(tables)).outcome()
        assert not after.cache_hit

    def test_submit_after_close_rejected(self, tables):
        service = QueryService(tables, workers=1)
        service.close()
        with pytest.raises(AdmissionError):
            service.submit(_join_plan(tables))

    def test_admission_queue_bound(self, tables):
        gate = GatePredicate()
        blocked = Scan(tables["serve_orders"], gate)
        cheap = Scan(tables["serve_items"])
        service = QueryService(tables, workers=1, max_inflight=1, max_queue=2)
        try:
            running = service.submit(blocked)
            assert gate.entered.wait(timeout=30)
            waiting = [service.submit(cheap) for _ in range(2)]
            with pytest.raises(AdmissionError) as excinfo:
                service.submit(cheap)
            assert excinfo.value.queued == 2
            assert excinfo.value.limit == 2
            gate.event.set()
            assert all(o.ok for o in service.drain([running, *waiting]))
            assert service.stats()["service"]["rejected"] == 1
        finally:
            gate.event.set()
            service.close()

    def test_fifo_within_priority(self, tables):
        gate = GatePredicate("hold")
        order: list[str] = []
        gates = {}
        plans = {}
        for label, priority in (("a", 5), ("b", 0), ("c", 5), ("d", 0)):
            tag_gate = GatePredicate(label)
            tag_gate.order = order
            tag_gate.event.set()  # record order, don't block
            gates[label] = tag_gate
            plans[label] = (Scan(tables["serve_orders"], tag_gate), priority)
        service = QueryService(tables, workers=1, max_inflight=1, max_queue=8)
        try:
            held = service.submit(Scan(tables["serve_orders"], gate))
            assert gate.entered.wait(timeout=30)
            tickets = [
                service.submit(
                    QueryRequest(plan=plan, priority=priority, tag=label)
                )
                for label, (plan, priority) in plans.items()
            ]
            gate.event.set()
            service.drain([held, *tickets])
            # Priority 0 before priority 5; FIFO inside each level.
            assert order == ["b", "d", "a", "c"]
        finally:
            gate.event.set()
            service.close()

    def test_timeout_in_queue(self, tables):
        gate = GatePredicate()
        service = QueryService(tables, workers=1, max_inflight=1, max_queue=4)
        try:
            held = service.submit(Scan(tables["serve_orders"], gate))
            assert gate.entered.wait(timeout=30)
            doomed = service.submit(
                QueryRequest(plan=Scan(tables["serve_items"]), timeout=0.0)
            )
            gate.event.set()
            outcome = doomed.outcome()
            assert not outcome.ok
            assert isinstance(outcome.error, QueryTimeoutError)
            assert outcome.error.where == "queued"
            assert service.drain([held])[0].ok
            assert service.stats()["service"]["timed_out"] == 1
        finally:
            gate.event.set()
            service.close()

    def test_timeout_mid_run(self, tables):
        gate = GatePredicate()
        # The gate holds the first operator (scan) past the deadline;
        # the boundary check before the next operator cuts the query.
        plan = Join(
            Scan(tables["serve_orders"], gate),
            Scan(tables["serve_items"]),
            algorithm="HJ",
        )
        service = QueryService(tables, workers=1, max_inflight=1)
        try:
            ticket = service.submit(QueryRequest(plan=plan, timeout=0.05))
            assert gate.entered.wait(timeout=30)
            time.sleep(0.1)  # let the deadline lapse while the scan is held
            gate.event.set()
            outcome = ticket.outcome()
            assert not outcome.ok
            assert isinstance(outcome.error, QueryTimeoutError)
            assert outcome.error.where == "running"
        finally:
            gate.event.set()
            service.close()

    def test_failed_query_reports_error(self, tables):
        bad = Join(
            Scan(tables["serve_orders"]),
            Scan(tables["serve_items"]),
            algorithm="NO-SUCH",
        )
        with QueryService(tables, workers=1) as service:
            outcome = service.submit(bad).outcome()
            assert not outcome.ok
            with pytest.raises(Exception):
                service.submit(bad).result()
        assert outcome.error is not None

    def test_registered_table_lookup(self, tables):
        with QueryService(tables, workers=1) as service:
            assert service.table("serve_orders").name == "serve_orders"
            with pytest.raises(ValidationError):
                service.table("nope")


class TestRunContextReuse:
    """S1: reruns must not re-derive statistics or re-resolve executors."""

    def _auto_join(self, tables):
        return Join(Scan(tables["serve_orders"]), Scan(tables["serve_items"]))

    def test_join_stats_derived_once_across_reruns(self, tables, monkeypatch):
        calls = {"n": 0}
        real = executor_module.table_stats

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(executor_module, "table_stats", counting)
        physical = compile_plan(self._auto_join(tables))
        context = RunContext()
        physical.run(Cluster(NUM_NODES), context=context)
        physical.run(Cluster(NUM_NODES), context=context)
        assert calls["n"] == 1

    def test_epoch_bump_forces_restat(self, tables, monkeypatch):
        calls = {"n": 0}
        real = executor_module.table_stats

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(executor_module, "table_stats", counting)
        physical = compile_plan(self._auto_join(tables))
        context = RunContext()
        physical.run(Cluster(NUM_NODES), context=context)
        bump_stats_epoch("serve_orders")
        physical.run(Cluster(NUM_NODES), context=context)
        assert calls["n"] == 2

    def test_warm_executor_used_and_restored(self, tables):
        with WarmExecutorPool(workers=2, backend="thread") as pool:
            cluster = Cluster(NUM_NODES)
            original = cluster.executor
            context = RunContext(executor=pool.lease())
            physical = compile_plan(self._auto_join(tables))
            physical.run(cluster, context=context)
            assert cluster.executor is original
            assert pool.stats()["dispatches"] > 0


class TestOperatorImmutability:
    """S2: compiled plans carry no per-run mutable operator state."""

    def test_operator_dicts_unchanged_by_run(self, tables):
        physical = compile_plan(
            Join(Scan(tables["serve_orders"]), Scan(tables["serve_items"]))
        )
        before = [dict(op.__dict__) for op in physical.operators]
        physical.run(Cluster(NUM_NODES))
        after = [dict(op.__dict__) for op in physical.operators]
        assert before == after

    def test_one_compiled_plan_serves_concurrent_runs(self, tables):
        physical = compile_plan(_join_plan(tables))
        solo = physical.run(Cluster(NUM_NODES))
        results = []
        errors = []

        def run():
            try:
                results.append(physical.run(Cluster(NUM_NODES)))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=run) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(r.output_rows == solo.output_rows for r in results)
        assert all(r.network_bytes == solo.network_bytes for r in results)


class TestServeBenchHelpers:
    def test_query_mix_is_cacheable(self, tables):
        mix = serve_query_mix(tables)
        assert len(mix) >= 8
        fingerprints = [plan.fingerprint() for plan in mix]
        assert len(set(fingerprints)) == len(fingerprints)
        # Rebuilt plans fingerprint identically (cache keys are stable).
        again = [plan.fingerprint() for plan in serve_query_mix(tables)]
        assert fingerprints == again
