"""Unit and property tests for the node-local join kernels."""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st

from repro.joins.local import (
    distinct_with_counts,
    join_indices,
    join_cardinality,
    local_join,
    match_mask,
)
from repro.storage import LocalPartition


def brute_force_pairs(keys_left, keys_right):
    return sorted(
        (i, j)
        for i in range(len(keys_left))
        for j in range(len(keys_right))
        if keys_left[i] == keys_right[j]
    )


class TestJoinIndices:
    def test_basic(self):
        left = np.array([1, 2, 2, 3])
        right = np.array([2, 2, 4])
        li, ri = join_indices(left, right)
        assert sorted(zip(li.tolist(), ri.tolist())) == [(1, 0), (1, 1), (2, 0), (2, 1)]

    def test_empty_sides(self):
        li, ri = join_indices(np.array([], dtype=np.int64), np.array([1, 2]))
        assert len(li) == 0
        li, ri = join_indices(np.array([1]), np.array([], dtype=np.int64))
        assert len(li) == 0

    def test_no_matches(self):
        li, ri = join_indices(np.array([1, 2]), np.array([3, 4]))
        assert len(li) == 0 and len(ri) == 0

    @given(
        st.lists(st.integers(0, 8), max_size=30),
        st.lists(st.integers(0, 8), max_size=30),
    )
    def test_matches_bruteforce(self, left_raw, right_raw):
        left = np.array(left_raw, dtype=np.int64)
        right = np.array(right_raw, dtype=np.int64)
        li, ri = join_indices(left, right)
        assert sorted(zip(li.tolist(), ri.tolist())) == brute_force_pairs(left_raw, right_raw)

    @given(
        st.lists(st.integers(0, 20), max_size=50),
        st.lists(st.integers(0, 20), max_size=50),
    )
    def test_cardinality_matches_indices(self, left_raw, right_raw):
        left = np.array(left_raw, dtype=np.int64)
        right = np.array(right_raw, dtype=np.int64)
        li, _ = join_indices(left, right)
        assert join_cardinality(left, right) == len(li)


class TestLocalJoin:
    def test_prefixes_and_payloads(self):
        left = LocalPartition(keys=np.array([1, 2]), columns={"v": np.array([10, 20])})
        right = LocalPartition(keys=np.array([2, 2]), columns={"v": np.array([5, 6])})
        joined = local_join(left, right)
        assert set(joined.columns) == {"r.v", "s.v"}
        assert np.array_equal(np.sort(joined.columns["s.v"]), [5, 6])
        assert np.all(joined.columns["r.v"] == 20)
        assert np.all(joined.keys == 2)

    def test_cartesian_expansion(self):
        left = LocalPartition(keys=np.array([7, 7, 7]), columns={})
        right = LocalPartition(keys=np.array([7, 7]), columns={})
        assert local_join(left, right).num_rows == 6


class TestHelpers:
    def test_distinct_with_counts(self):
        keys, counts = distinct_with_counts(np.array([3, 1, 3, 3, 1]))
        assert np.array_equal(keys, [1, 3])
        assert np.array_equal(counts, [2, 3])

    def test_match_mask(self):
        mask = match_mask(np.array([1, 5, 9]), np.array([5, 6]))
        assert mask.tolist() == [False, True, False]

    def test_match_mask_empty_probe(self):
        assert not match_mask(np.array([1, 2]), np.array([], dtype=np.int64)).any()
