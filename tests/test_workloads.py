"""Tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GraceHashJoin, JoinSpec
from repro.encoding import DictionaryEncoding, FixedByteEncoding, VarByteEncoding
from repro.errors import WorkloadError
from repro.workloads import (
    PATTERN_COLLOCATED,
    PATTERN_PARTIAL,
    PATTERN_SPREAD,
    X_PAPER,
    Y_PAPER,
    both_sides_pattern_workload,
    single_side_pattern_workload,
    unique_keys_workload,
    workload_x,
    workload_y,
    x_query_schemas,
)


class TestUniqueKeys:
    def test_cardinalities_and_scale(self):
        wl = unique_keys_workload(scaled_tuples=10_000)
        assert wl.table_r.total_rows == 10_000
        assert wl.table_s.total_rows == 10_000
        assert wl.scale == pytest.approx(1e9 / 10_000)

    def test_widths(self):
        wl = unique_keys_workload(row_bytes_r=20, row_bytes_s=60, scaled_tuples=100)
        encoding = DictionaryEncoding()
        assert wl.table_r.schema.tuple_width(encoding) == pytest.approx(20)
        assert wl.table_s.schema.tuple_width(encoding) == pytest.approx(60)

    def test_output_is_one_to_one(self):
        wl = unique_keys_workload(scaled_tuples=5_000, num_nodes=4)
        result = GraceHashJoin().run(
            wl.cluster, wl.table_r, wl.table_s, JoinSpec(materialize=False)
        )
        assert result.output_rows == 5_000


class TestPatternWorkloads:
    def test_single_side_row_counts(self):
        wl = single_side_pattern_workload(PATTERN_PARTIAL, scaled_keys=1000)
        assert wl.table_r.total_rows == 1000
        assert wl.table_s.total_rows == 5000
        assert wl.expected_output_rows == 5000

    def test_single_side_invalid_pattern(self):
        with pytest.raises(WorkloadError):
            single_side_pattern_workload((2, 2), scaled_keys=10)

    def test_collocated_pattern_keeps_repeats_together(self):
        wl = single_side_pattern_workload(PATTERN_COLLOCATED, scaled_keys=500)
        for partition in wl.table_s.partitions:
            keys, counts = np.unique(partition.keys, return_counts=True)
            assert (counts == 5).all()

    def test_both_sides_output(self):
        wl = both_sides_pattern_workload(
            PATTERN_SPREAD, inter_collocated=False, scaled_keys=400
        )
        result = GraceHashJoin().run(
            wl.cluster, wl.table_r, wl.table_s, JoinSpec(materialize=False)
        )
        assert result.output_rows == 400 * 25

    def test_inter_collocation_aligns_tables(self):
        wl = both_sides_pattern_workload(
            PATTERN_COLLOCATED, inter_collocated=True, scaled_keys=300
        )
        # Every key's R node set equals its S node set.
        for node in range(wl.num_nodes):
            keys_r = set(wl.table_r.partitions[node].keys.tolist())
            keys_s = set(wl.table_s.partitions[node].keys.tolist())
            assert keys_r == keys_s


class TestWorkloadX:
    def test_schemas_match_table1_bits(self):
        schema_r, schema_s = x_query_schemas(1)
        encoding = DictionaryEncoding()
        assert schema_r.tuple_width(encoding) * 8 == pytest.approx(79)
        assert schema_s.tuple_width(encoding) * 8 == pytest.approx(145)

    @pytest.mark.parametrize("query", [2, 3, 4, 5])
    def test_other_query_widths(self, query):
        schema_r, schema_s = x_query_schemas(query)
        bits_r, bits_s = X_PAPER["query_bits"][query]
        encoding = DictionaryEncoding()
        assert schema_r.tuple_width(encoding) * 8 == pytest.approx(bits_r)
        assert schema_s.tuple_width(encoding) * 8 == pytest.approx(bits_s)

    def test_invalid_query(self):
        with pytest.raises(WorkloadError):
            x_query_schemas(6)

    def test_cardinalities_scale(self):
        wl = workload_x(scale_denominator=2048)
        assert wl.table_r.total_rows == round(X_PAPER["tuples_r"] / 2048)
        assert wl.table_s.total_rows == round(X_PAPER["tuples_s"] / 2048)

    def test_output_close_to_published(self):
        wl = workload_x(scale_denominator=1024, num_nodes=4)
        result = GraceHashJoin().run(
            wl.cluster, wl.table_r, wl.table_s, JoinSpec(materialize=False)
        )
        assert result.output_rows == pytest.approx(
            X_PAPER["output"] / 1024, rel=0.02
        )

    def test_shuffled_removes_locality(self):
        original = workload_x(scale_denominator=2048, num_nodes=4, ordering="original")
        shuffled = workload_x(scale_denominator=2048, num_nodes=4, ordering="shuffled")
        from repro import TrackJoin2

        spec = JoinSpec(materialize=False)
        orig = TrackJoin2("RS").run(
            original.cluster, original.table_r, original.table_s, spec
        )
        shuf = TrackJoin2("RS").run(
            shuffled.cluster, shuffled.table_r, shuffled.table_s, spec
        )
        assert orig.network_bytes < shuf.network_bytes

    def test_hash_join_blind_to_ordering(self):
        """HJ traffic must be ~identical for original vs shuffled (Fig 7/8)."""
        spec = JoinSpec(materialize=False)
        results = []
        for ordering in ("original", "shuffled"):
            wl = workload_x(scale_denominator=2048, num_nodes=4, ordering=ordering)
            results.append(
                GraceHashJoin().run(wl.cluster, wl.table_r, wl.table_s, spec).network_bytes
            )
        assert results[0] == pytest.approx(results[1], rel=0.01)

    def test_implementation_widths(self):
        wl = workload_x(scale_denominator=4096, implementation_widths=True, num_nodes=4)
        encoding = DictionaryEncoding()
        assert wl.table_r.schema.tuple_width(encoding) == pytest.approx(11)
        assert wl.table_s.schema.tuple_width(encoding) == pytest.approx(22)

    def test_encoding_width_ordering(self):
        """varbyte > fixed > dictionary for the Table 1 schema (Fig 7)."""
        schema_r, _ = x_query_schemas(1)
        widths = {
            name: schema_r.tuple_width(enc())
            for name, enc in (
                ("fixed", FixedByteEncoding),
                ("varbyte", VarByteEncoding),
                ("dictionary", DictionaryEncoding),
            )
        }
        assert widths["dictionary"] < widths["fixed"] < widths["varbyte"]


class TestWorkloadY:
    def test_cardinalities(self):
        wl = workload_y(scale_denominator=512)
        assert wl.table_r.total_rows == round(Y_PAPER["tuples_r"] / 512)
        assert wl.table_s.total_rows == round(Y_PAPER["tuples_s"] / 512)

    def test_output_amplification(self):
        """Output ~ 5.4x the input cardinality, as published."""
        wl = workload_y(scale_denominator=512, num_nodes=4)
        result = GraceHashJoin().run(
            wl.cluster, wl.table_r, wl.table_s, JoinSpec(materialize=False)
        )
        assert result.output_rows == wl.expected_output_rows
        amplification = result.output_rows / (
            wl.table_r.total_rows + wl.table_s.total_rows
        )
        assert amplification == pytest.approx(5.4, rel=0.06)

    def test_varbyte_tuple_widths(self):
        wl = workload_y(scale_denominator=1024)
        encoding = VarByteEncoding()
        assert wl.table_r.schema.tuple_width(encoding) == pytest.approx(
            Y_PAPER["row_bytes_r"]
        )
        assert wl.table_s.schema.tuple_width(encoding) == pytest.approx(
            Y_PAPER["row_bytes_s"]
        )

    def test_inconsistent_repeats_rejected(self):
        # 1x1 repeats would need more matched keys than R has tuples.
        with pytest.raises(WorkloadError):
            workload_y(repeats_r=1, repeats_s=1)

    def test_invalid_ordering(self):
        with pytest.raises(WorkloadError):
            workload_y(ordering="sorted")


class TestZipfWorkload:
    def test_skew_zero_is_uniform(self):
        from repro.workloads import zipf_workload

        wl = zipf_workload(tuples_per_table=20_000, distinct_keys=2_000, skew=0.0)
        keys = wl.table_r.all_keys()
        counts = np.bincount(keys, minlength=2_000)
        # Uniform draws: the hottest key stays near the mean.
        assert counts.max() < 4 * counts.mean()

    def test_skew_concentrates_frequency(self):
        from repro.workloads import zipf_workload

        flat = zipf_workload(tuples_per_table=20_000, distinct_keys=2_000, skew=0.0)
        skewed = zipf_workload(tuples_per_table=20_000, distinct_keys=2_000, skew=1.2)
        top_flat = np.bincount(flat.table_r.all_keys()).max()
        top_skewed = np.bincount(skewed.table_r.all_keys()).max()
        assert top_skewed > 5 * top_flat

    def test_invalid_parameters(self):
        from repro.workloads import zipf_workload

        with pytest.raises(WorkloadError):
            zipf_workload(skew=-1.0)
        with pytest.raises(WorkloadError):
            zipf_workload(distinct_keys=0)


class TestHotKeyWorkload:
    def test_deterministic_given_seed(self):
        from repro.workloads import hot_key_workload

        first = hot_key_workload(num_nodes=4, tuples_per_table=5_000, seed=3)
        second = hot_key_workload(num_nodes=4, tuples_per_table=5_000, seed=3)
        np.testing.assert_array_equal(
            first.table_s.all_keys(), second.table_s.all_keys()
        )
        np.testing.assert_array_equal(
            first.table_r.all_keys(), second.table_r.all_keys()
        )
        for node in range(4):
            np.testing.assert_array_equal(
                first.table_r.partitions[node].keys,
                second.table_r.partitions[node].keys,
            )

    def test_build_side_has_zipf_head(self):
        from repro.workloads import hot_key_workload

        wl = hot_key_workload(
            num_nodes=4, tuples_per_table=20_000, distinct_keys=2_000, skew=1.2
        )
        counts = np.bincount(wl.table_s.all_keys(), minlength=2_000)
        assert counts.max() > 0.02 * 20_000  # the head crosses hot_threshold
        # Zipf rank order: key 0 is the hottest.
        assert counts.argmax() == 0

    def test_probe_amplification_tracks_hot_keys(self):
        from repro.workloads import hot_key_workload

        wl = hot_key_workload(
            num_nodes=4,
            tuples_per_table=20_000,
            distinct_keys=2_000,
            hot_threshold=0.02,
            probe_factor=3.0,
        )
        counts_s = np.bincount(wl.table_s.all_keys(), minlength=2_000)
        counts_r = np.bincount(wl.table_r.all_keys(), minlength=2_000)
        hot = np.flatnonzero(counts_s > 0.02 * 20_000)
        assert len(hot) >= 1
        background_mean = counts_r.mean()
        for key in hot:
            # Background (~10/key) plus ceil(3/4 of the build count).
            expected = np.ceil(3.0 * counts_s[key] / 4)
            assert counts_r[key] >= expected
            assert counts_r[key] >= 5 * background_mean

    def test_row_widths(self):
        from repro.workloads import hot_key_workload

        wl = hot_key_workload(
            num_nodes=4, tuples_per_table=2_000, row_bytes_r=30, row_bytes_s=60
        )
        encoding = DictionaryEncoding()
        assert wl.table_r.schema.tuple_width(encoding) == pytest.approx(30)
        assert wl.table_s.schema.tuple_width(encoding) == pytest.approx(60)

    def test_invalid_parameters(self):
        from repro.workloads import hot_key_workload

        with pytest.raises(WorkloadError):
            hot_key_workload(skew=-1.0)
        with pytest.raises(WorkloadError):
            hot_key_workload(distinct_keys=0)
        with pytest.raises(WorkloadError):
            hot_key_workload(hot_threshold=0.0)


class TestTpch:
    def test_cardinalities_follow_scale_factor(self):
        from repro import Cluster
        from repro.workloads import TPCH_BASE_ROWS, tpch_tables

        cluster = Cluster(4)
        tables = tpch_tables(cluster, scale_factor=0.01, seed=1)
        assert tables["customer"].total_rows == TPCH_BASE_ROWS["customer"] // 100
        assert tables["orders"].total_rows == TPCH_BASE_ROWS["orders"] // 100
        # Lineitems per order are uniform 1..7 -> mean 4.
        ratio = tables["lineitem"].total_rows / tables["orders"].total_rows
        assert 3.5 < ratio < 4.5

    def test_foreign_keys_resolve(self):
        from repro import Cluster
        from repro.workloads import tpch_tables

        cluster = Cluster(4)
        tables = tpch_tables(cluster, scale_factor=0.005, seed=2)
        custkeys = tables["orders"].gathered().columns["o_custkey"]
        assert custkeys.max() < tables["customer"].total_rows
        orderkeys = tables["lineitem"].all_keys()
        assert orderkeys.max() < tables["orders"].total_rows

    def test_query_plan_over_tpch(self):
        """A TPC-H Q3-style query runs end to end on the substrate."""
        from repro import Cluster
        from repro.query import (
            Aggregate,
            AggregateSpec,
            ColumnPredicate,
            Join,
            Scan,
            execute,
        )
        from repro.workloads import tpch_tables

        cluster = Cluster(4)
        tables = tpch_tables(cluster, scale_factor=0.002, seed=3)
        plan = Aggregate(
            Join(
                Join(
                    Scan(tables["lineitem"], ColumnPredicate("l_shipdate", ">", 1200)),
                    Scan(tables["orders"], ColumnPredicate("o_orderdate", "<", 1200)),
                    algorithm="auto",
                    rekey_on="s.o_custkey",
                ),
                Scan(tables["customer"], ColumnPredicate("c_mktsegment", "==", 1)),
                algorithm="auto",
            ),
            aggregates=(AggregateSpec("revenue", "sum", "r.r.l_extendedprice"),),
        )
        result = execute(plan, cluster)
        assert result.output_rows > 0
        assert result.network_bytes > 0
        # Final groups are customers in the chosen segment.
        assert result.output_rows <= tables["customer"].total_rows

    def test_invalid_scale_factor(self):
        from repro import Cluster
        from repro.workloads import tpch_tables

        with pytest.raises(WorkloadError):
            tpch_tables(Cluster(2), scale_factor=0)
