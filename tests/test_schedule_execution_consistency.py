"""End-to-end consistency: executed traffic equals scheduled cost.

The schedule generator predicts, per key, exactly how many bytes its
plan moves (tuple transfers + location/migration messages, with sends
to/from the scheduling node free).  The executor moves real tuples
through the simulated network.  If both are correct, the ledger's
non-tracking traffic must equal the summed per-key schedule costs —
byte for byte.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Cluster, JoinSpec, TrackJoin2, TrackJoin3, TrackJoin4
from repro.cluster import MessageClass
from repro.core.schedule import generate_schedules
from repro.core.tracking import run_tracking_phase
from repro.timing.profile import ExecutionProfile

from conftest import make_tables


def _scheduled_cost(cluster, table_r, table_s, spec, allow_migration, forced):
    """Total per-key schedule cost predicted for these inputs."""
    cluster.reset()
    profile = ExecutionProfile(cluster.num_nodes)
    tracking = run_tracking_phase(cluster, table_r, table_s, spec, profile, True)
    for _node, _messages in cluster.network.deliver_all():
        pass
    key_width = table_r.schema.key_width(spec.encoding)
    schedules = generate_schedules(
        tracking,
        location_width=key_width + spec.location_width,
        allow_migration=allow_migration,
        forced_direction=forced,
    )
    return float(schedules.cost.sum())


def _executed_non_tracking_bytes(result):
    return (
        result.class_bytes(MessageClass.R_TUPLES)
        + result.class_bytes(MessageClass.S_TUPLES)
        + result.class_bytes(MessageClass.KEYS_NODES)
    )


@pytest.mark.parametrize(
    "algorithm,allow_migration,forced",
    [
        (TrackJoin2("RS"), False, "RS"),
        (TrackJoin2("SR"), False, "SR"),
        (TrackJoin3(), False, None),
        (TrackJoin4(), True, None),
    ],
)
def test_executed_traffic_equals_schedule_cost(
    small_cluster, small_tables, algorithm, allow_migration, forced
):
    table_r, table_s = small_tables
    spec = JoinSpec(location_width=1.0)
    predicted = _scheduled_cost(
        small_cluster, table_r, table_s, spec, allow_migration, forced
    )
    result = algorithm.run(small_cluster, table_r, table_s, spec)
    assert _executed_non_tracking_bytes(result) == pytest.approx(predicted)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(0, 25), min_size=1, max_size=80),
    st.lists(st.integers(0, 25), min_size=1, max_size=80),
    st.integers(2, 5),
    st.integers(0, 50),
)
def test_consistency_on_random_inputs(keys_r, keys_s, num_nodes, seed):
    cluster = Cluster(num_nodes)
    table_r, table_s = make_tables(
        cluster,
        np.array(keys_r, dtype=np.int64),
        np.array(keys_s, dtype=np.int64),
        seed=seed,
    )
    spec = JoinSpec(location_width=1.0)
    predicted = _scheduled_cost(cluster, table_r, table_s, spec, True, None)
    result = TrackJoin4().run(cluster, table_r, table_s, spec)
    assert _executed_non_tracking_bytes(result) == pytest.approx(predicted)
