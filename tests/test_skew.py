"""Tests for heavy-hitter sharding (Section 5 skew extension).

Two regression bars anchor the suite: on non-skewed inputs the sharded
operator must be *byte-identical* to plain 4TJ (same schedules, same
ledger), and on skewed inputs it must stay *row-identical* while
flattening the per-node received-byte peak.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Cluster, JoinSpec, SkewShardTrackJoin, TrackJoin4
from repro.cluster.network import MessageClass
from repro.core.schedule import generate_schedules
from repro.core.skew import attach_shards, plan_shards
from repro.core.tracking import TrackingTable
from repro.errors import ValidationError
from repro.exchange import absorb_received
from repro.exchange.migrate import ShardedMigrate
from repro.storage import LocalPartition
from repro.timing.profile import ExecutionProfile
from repro.util import segment_boundaries, segment_ids
from repro.workloads import hot_key_workload

from conftest import assert_same_output, make_tables


def tracking_from_dicts(per_key, t_nodes):
    """Build a TrackingTable from per-key (sizes_r, sizes_s) dicts."""
    keys, nodes, size_r, size_s = [], [], [], []
    for key, (sizes_r, sizes_s) in enumerate(per_key):
        for node in sorted(set(sizes_r) | set(sizes_s)):
            keys.append(key)
            nodes.append(node)
            size_r.append(float(sizes_r.get(node, 0.0)))
            size_s.append(float(sizes_s.get(node, 0.0)))
    keys = np.array(keys, dtype=np.int64)
    return TrackingTable(
        keys=keys,
        nodes=np.array(nodes, dtype=np.int64),
        size_r=np.array(size_r),
        size_s=np.array(size_s),
        key_starts=segment_boundaries(keys),
        t_nodes=np.array(t_nodes, dtype=np.int64),
    )


def hot_tables(cluster, hot_repeats=600, num_cold=200, seed=11):
    """One dominating key plus uniform background on both sides.

    The hot key's R rows are half its S count — enough probe bytes that
    the optimal plan consolidates the key at a single node (migration
    beats broadcasting either side everywhere), which is the regime the
    shard planner targets.
    """
    rng = np.random.default_rng(seed)
    keys_r = np.concatenate(
        [np.full(hot_repeats // 2, 0), rng.integers(1, num_cold, 400)]
    )
    keys_s = np.concatenate([np.full(hot_repeats, 0), rng.integers(1, num_cold, 400)])
    return make_tables(cluster, keys_r.astype(np.int64), keys_s.astype(np.int64))


def hot_colocated(sizes_r, sizes_s, num_nodes):
    """One hot key with the given per-node bytes on every node."""
    return (
        {node: sizes_r for node in range(num_nodes)},
        {node: sizes_s for node in range(num_nodes)},
    )


class TestPlanShards:
    def test_small_cluster_and_empty_tracking_return_none(self):
        tracking = tracking_from_dicts([({0: 10.0}, {1: 10.0})], [0])
        schedules = generate_schedules(tracking)
        assert plan_shards(tracking, schedules, num_nodes=1) is None
        empty = TrackingTable(
            keys=np.empty(0, dtype=np.int64),
            nodes=np.empty(0, dtype=np.int64),
            size_r=np.empty(0),
            size_s=np.empty(0),
            key_starts=np.zeros(1, dtype=np.int64),
            t_nodes=np.empty(0, dtype=np.int64),
        )
        assert plan_shards(empty, generate_schedules(empty), num_nodes=4) is None

    def test_no_hot_keys_returns_none(self):
        per_key = [({node: 5.0}, {(node + 1) % 4: 5.0}) for node in range(4)] * 5
        tracking = tracking_from_dicts(per_key, [0] * len(per_key))
        schedules = generate_schedules(tracking)
        # Every key holds 1/20 of the bytes: below a 0.25 threshold.
        assert plan_shards(tracking, schedules, num_nodes=4, hot_fraction=0.25) is None
        assert attach_shards(schedules, None) is schedules

    def test_only_consolidating_keys_shard(self):
        # The hot key's tuples already live everywhere with huge build
        # fragments per node, so the optimal plan never migrates it —
        # and sharding must leave it alone.
        spread = ({n: 2.0 for n in range(4)}, {n: 400.0 for n in range(4)})
        tracking = tracking_from_dicts([spread], [0])
        schedules = generate_schedules(tracking)
        assert int(schedules.dest_node[0]) == -1
        assert plan_shards(tracking, schedules, num_nodes=4, hot_fraction=0.05) is None

    def test_deals_larger_side(self):
        # A consolidated hot key deals its larger side, even when the
        # traffic-optimal direction broadcast that side: with S double R
        # the base plan consolidates R under an S broadcast, but the
        # shard plan flips to deal S and replicate the cheap R.
        per_key = [
            hot_colocated(10.0, 20.0, 4),
            hot_colocated(20.0, 10.0, 4),
        ]
        tracking = tracking_from_dicts(per_key, [0, 0])
        schedules = generate_schedules(tracking)
        assert (schedules.dest_node >= 0).all()
        plan = plan_shards(tracking, schedules, num_nodes=4, hot_fraction=0.1)
        assert plan is not None
        assert plan.sharded.all()
        assert bool(plan.direction_rs[0]) is True  # S bigger: deal S
        assert bool(plan.direction_rs[1]) is False  # R bigger: deal R
        # Key 0's flip is visible: the base plan broadcast S.
        assert bool(schedules.direction_rs[0]) is False

    def test_shard_counts_bounded_and_capped(self):
        per_key = [hot_colocated(10.0, 30.0, 8), ({0: 1.0}, {1: 2.0})]
        tracking = tracking_from_dicts(per_key, [0, 0])
        schedules = generate_schedules(tracking)
        plan = plan_shards(tracking, schedules, num_nodes=8, hot_fraction=0.1)
        counts = np.diff(plan.offsets)[plan.sharded]
        assert ((counts >= 2) & (counts <= 8)).all()
        capped = plan_shards(
            tracking, schedules, num_nodes=8, hot_fraction=0.1, max_shards=3
        )
        assert (np.diff(capped.offsets)[capped.sharded] <= 3).all()

    def test_deterministic(self):
        per_key = [
            hot_colocated(10.0, 20.0, 6),
            hot_colocated(8.0, 16.0, 6),
            ({0: 7.0}, {3: 9.0}),
        ]
        tracking = tracking_from_dicts(per_key, [0, 1, 2])
        schedules = generate_schedules(tracking)
        first = plan_shards(tracking, schedules, num_nodes=6, hot_fraction=0.1)
        second = plan_shards(tracking, schedules, num_nodes=6, hot_fraction=0.1)
        np.testing.assert_array_equal(first.sharded, second.sharded)
        np.testing.assert_array_equal(first.offsets, second.offsets)
        np.testing.assert_array_equal(first.dests, second.dests)
        np.testing.assert_array_equal(first.direction_rs, second.direction_rs)

    def test_attach_clears_single_destination_machinery(self):
        per_key = [hot_colocated(10.0, 20.0, 4), ({0: 7.0}, {3: 9.0})]
        tracking = tracking_from_dicts(per_key, [0, 0])
        schedules = generate_schedules(tracking)
        plan = plan_shards(tracking, schedules, num_nodes=4, hot_fraction=0.1)
        attached = attach_shards(schedules, plan)
        seg = segment_ids(tracking.key_starts, tracking.num_entries)
        assert (attached.dest_node[attached.sharded] == -1).all()
        assert not attached.migrate[attached.sharded[seg]].any()
        # Cold keys keep their traffic-optimal schedule untouched.
        cold = ~attached.sharded
        np.testing.assert_array_equal(
            attached.dest_node[cold], schedules.dest_node[cold]
        )

    def test_invalid_hot_fraction(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValidationError):
                SkewShardTrackJoin(hot_fraction=bad)


@st.composite
def uniform_instance(draw):
    """A non-skewed join: every key appears the same number of times."""
    num_nodes = draw(st.integers(2, 5))
    num_keys = draw(st.integers(30, 60))
    repeats_r = draw(st.integers(1, 3))
    repeats_s = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 1000))
    return num_nodes, num_keys, repeats_r, repeats_s, seed


class TestNonSkewedIdentity:
    @settings(max_examples=10, deadline=None)
    @given(uniform_instance())
    def test_schedules_byte_identical(self, instance):
        """With >= 30 equal-frequency keys nothing crosses the default
        5% threshold, so the sharded operator must emit the very same
        schedule set ``generate_schedules`` does."""
        num_nodes, num_keys, repeats_r, repeats_s, seed = instance
        rng = np.random.default_rng(seed)
        per_key = []
        for _ in range(num_keys):
            node_r = int(rng.integers(0, num_nodes))
            node_s = int(rng.integers(0, num_nodes))
            per_key.append(({node_r: float(repeats_r)}, {node_s: float(repeats_s)}))
        tracking = tracking_from_dicts(
            per_key, list(rng.integers(0, num_nodes, num_keys))
        )
        schedules = generate_schedules(tracking)
        plan = plan_shards(tracking, schedules, num_nodes, hot_fraction=0.05)
        assert plan is None
        assert attach_shards(schedules, plan) is schedules

    @settings(max_examples=8, deadline=None)
    @given(uniform_instance())
    def test_ledger_byte_identical(self, instance):
        num_nodes, num_keys, repeats_r, repeats_s, seed = instance
        cluster = Cluster(num_nodes)
        keys_r = np.repeat(np.arange(num_keys, dtype=np.int64), repeats_r)
        keys_s = np.repeat(np.arange(num_keys, dtype=np.int64), repeats_s)
        table_r, table_s = make_tables(cluster, keys_r, keys_s, seed=seed)
        plain = TrackJoin4().run(cluster, table_r, table_s)
        sharded = SkewShardTrackJoin().run(cluster, table_r, table_s)
        assert plain.traffic.by_link == sharded.traffic.by_link
        assert plain.traffic.received_by_node == sharded.traffic.received_by_node
        assert_same_output(plain, sharded)


class TestSkewedExecution:
    def test_row_identical_on_hot_key(self):
        cluster = Cluster(6)
        table_r, table_s = hot_tables(cluster)
        plain = TrackJoin4().run(cluster, table_r, table_s)
        sharded = SkewShardTrackJoin(hot_fraction=0.05).run(cluster, table_r, table_s)
        assert_same_output(plain, sharded)
        # The hot key engaged the sharding path: replication costs some
        # extra traffic but the per-node peak must not grow.
        assert sharded.network_bytes > plain.network_bytes
        assert (
            sharded.traffic.max_received_bytes
            <= plain.traffic.max_received_bytes + 1e-9
        )

    @pytest.mark.parametrize("workers", [1, 4, 8])
    def test_row_identical_across_worker_counts(self, workers):
        reference_cluster = Cluster(6)
        table_r, table_s = hot_tables(reference_cluster)
        reference = TrackJoin4().run(reference_cluster, table_r, table_s)
        cluster = Cluster(6, workers=workers)
        table_r, table_s = hot_tables(cluster)
        result = SkewShardTrackJoin(hot_fraction=0.05).run(cluster, table_r, table_s)
        assert_same_output(reference, result)

    def test_flattens_max_received_on_zipf_workload(self):
        plain_load = hot_key_workload(
            num_nodes=8, tuples_per_table=12_000, distinct_keys=1_200, seed=0
        )
        shard_load = hot_key_workload(
            num_nodes=8, tuples_per_table=12_000, distinct_keys=1_200, seed=0
        )
        spec = JoinSpec(materialize=False, group_locations=True)
        plain = TrackJoin4().run(
            plain_load.cluster, plain_load.table_r, plain_load.table_s, spec
        )
        sharded = SkewShardTrackJoin(hot_fraction=0.05).run(
            shard_load.cluster, shard_load.table_r, shard_load.table_s, spec
        )
        assert plain.output_rows == sharded.output_rows
        assert sharded.traffic.max_received_bytes < plain.traffic.max_received_bytes

    def test_deterministic_ledger(self):
        cluster = Cluster(6)
        table_r, table_s = hot_tables(cluster)
        first = SkewShardTrackJoin().run(cluster, table_r, table_s)
        second = SkewShardTrackJoin().run(cluster, table_r, table_s)
        assert first.traffic.by_link == second.traffic.by_link


class TestShardedMigrate:
    def test_round_robin_deal(self):
        """Rows deal cyclically over the destination list, in holder
        row order; non-matching rows stay behind."""
        cluster = Cluster(3)
        values = np.arange(6, dtype=np.int64)
        holders = [
            LocalPartition(
                keys=np.array([7, 7, 7, 7, 7, 9], dtype=np.int64),
                columns={"v": values},
            ),
            LocalPartition.empty(("v",)),
            LocalPartition.empty(("v",)),
        ]
        profile = ExecutionProfile(cluster.num_nodes)
        ShardedMigrate(
            category=MessageClass.R_TUPLES,
            width=4.0,
            transfer_step="transfer",
            copy_step="copy",
        ).run(
            cluster,
            profile,
            holders,
            keys=np.array([7], dtype=np.int64),
            nodes=np.array([0], dtype=np.int64),
            dest_offsets=np.array([0, 2], dtype=np.int64),
            dest_nodes=np.array([1, 2], dtype=np.int64),
        )
        absorb_received(cluster, {MessageClass.R_TUPLES: holders})
        np.testing.assert_array_equal(holders[0].keys, [9])
        np.testing.assert_array_equal(holders[0].columns["v"], [5])
        np.testing.assert_array_equal(holders[1].columns["v"], [0, 2, 4])
        np.testing.assert_array_equal(holders[2].columns["v"], [1, 3])

    def test_self_destination_is_local_copy(self):
        """A shard destination equal to the holder costs no network."""
        cluster = Cluster(2)
        holders = [
            LocalPartition(
                keys=np.array([5, 5], dtype=np.int64),
                columns={"v": np.array([10, 20], dtype=np.int64)},
            ),
            LocalPartition.empty(("v",)),
        ]
        profile = ExecutionProfile(cluster.num_nodes)
        ShardedMigrate(
            category=MessageClass.R_TUPLES,
            width=4.0,
            transfer_step="transfer",
            copy_step="copy",
        ).run(
            cluster,
            profile,
            holders,
            keys=np.array([5], dtype=np.int64),
            nodes=np.array([0], dtype=np.int64),
            dest_offsets=np.array([0, 2], dtype=np.int64),
            dest_nodes=np.array([0, 1], dtype=np.int64),
        )
        absorb_received(cluster, {MessageClass.R_TUPLES: holders})
        np.testing.assert_array_equal(np.sort(holders[0].columns["v"]), [10])
        np.testing.assert_array_equal(holders[1].columns["v"], [20])
        assert cluster.network.ledger.total_bytes == 4.0


class TestLoadMetrics:
    def test_ledger_max_received(self):
        cluster = Cluster(4)
        table_r, table_s = hot_tables(cluster)
        result = TrackJoin4().run(cluster, table_r, table_s)
        assert result.traffic.max_received_bytes == max(
            result.traffic.received_by_node.values()
        )
        assert result.traffic.max_sent_bytes == max(
            result.traffic.sent_by_node.values()
        )

    def test_profile_records_network_load(self):
        cluster = Cluster(4)
        table_r, table_s = hot_tables(cluster)
        result = SkewShardTrackJoin().run(cluster, table_r, table_s)
        load = result.profile.network_load
        assert load["max_received_bytes"] == result.traffic.max_received_bytes
        assert load["max_sent_bytes"] == result.traffic.max_sent_bytes
        assert load["mean_received_bytes"] == pytest.approx(
            sum(result.traffic.received_by_node.values()) / cluster.num_nodes
        )
