"""Cross-cutting property tests over the whole join stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Cluster,
    GraceHashJoin,
    JoinSpec,
    TrackJoin2,
    TrackJoin3,
    TrackJoin4,
)
from repro.cluster import MessageClass

from conftest import assert_same_output, canonical_output, make_tables


@st.composite
def join_instance(draw):
    """A random join: keys for both sides, cluster size, placement seed."""
    num_nodes = draw(st.integers(2, 6))
    keys_r = draw(st.lists(st.integers(0, 40), min_size=0, max_size=150))
    keys_s = draw(st.lists(st.integers(0, 40), min_size=0, max_size=150))
    seed = draw(st.integers(0, 1000))
    return num_nodes, keys_r, keys_s, seed


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(join_instance())
    def test_repeated_runs_identical(self, instance):
        num_nodes, keys_r, keys_s, seed = instance
        cluster = Cluster(num_nodes)
        table_r, table_s = make_tables(
            cluster, np.array(keys_r, dtype=np.int64), np.array(keys_s, dtype=np.int64),
            seed=seed,
        )
        first = TrackJoin4().run(cluster, table_r, table_s)
        second = TrackJoin4().run(cluster, table_r, table_s)
        assert first.network_bytes == second.network_bytes
        assert first.traffic.by_link == second.traffic.by_link
        assert_same_output(first, second)


class TestOutputInvariance:
    @settings(max_examples=12, deadline=None)
    @given(join_instance(), st.integers(0, 5))
    def test_output_independent_of_hash_seed(self, instance, hash_seed):
        """The join result never depends on where scheduling happens."""
        num_nodes, keys_r, keys_s, seed = instance
        cluster = Cluster(num_nodes)
        table_r, table_s = make_tables(
            cluster, np.array(keys_r, dtype=np.int64), np.array(keys_s, dtype=np.int64),
            seed=seed,
        )
        base = TrackJoin4().run(cluster, table_r, table_s, JoinSpec(hash_seed=0))
        other = TrackJoin4().run(cluster, table_r, table_s, JoinSpec(hash_seed=hash_seed))
        assert_same_output(base, other)

    @settings(max_examples=12, deadline=None)
    @given(join_instance())
    def test_output_independent_of_placement(self, instance):
        """Re-placing the same rows never changes the join output."""
        num_nodes, keys_r, keys_s, seed = instance
        outputs = []
        for placement_seed in (seed, seed + 7):
            cluster = Cluster(num_nodes)
            table_r, table_s = make_tables(
                cluster,
                np.array(keys_r, dtype=np.int64),
                np.array(keys_s, dtype=np.int64),
                seed=placement_seed,
            )
            outputs.append(
                canonical_output(TrackJoin3().run(cluster, table_r, table_s))
            )
        assert outputs[0].shape == outputs[1].shape
        assert np.array_equal(outputs[0], outputs[1])


class TestTrafficMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(join_instance())
    def test_four_phase_payload_never_exceeds_simpler_variants(self, instance):
        num_nodes, keys_r, keys_s, seed = instance
        cluster = Cluster(num_nodes)
        table_r, table_s = make_tables(
            cluster, np.array(keys_r, dtype=np.int64), np.array(keys_s, dtype=np.int64),
            seed=seed,
        )
        spec = JoinSpec()

        def optimized_bytes(result):
            # The 4-phase per-key optimum minimizes payload PLUS location
            # bytes, so only their sum is monotone: a key may pay a few
            # more payload bytes to avoid sending its location list.
            return (
                result.class_bytes(MessageClass.R_TUPLES)
                + result.class_bytes(MessageClass.S_TUPLES)
                + result.class_bytes(MessageClass.KEYS_NODES)
            )

        four = optimized_bytes(TrackJoin4().run(cluster, table_r, table_s, spec))
        for simpler in (TrackJoin2("RS"), TrackJoin2("SR"), TrackJoin3()):
            assert (
                four
                <= optimized_bytes(simpler.run(cluster, table_r, table_s, spec)) + 1e-9
            )

    @settings(max_examples=8, deadline=None)
    @given(join_instance())
    def test_wider_payloads_cost_more(self, instance):
        """Traffic is monotone in payload width for every algorithm."""
        num_nodes, keys_r, keys_s, seed = instance
        for algorithm_factory in (GraceHashJoin, TrackJoin4):
            totals = []
            for payload_bits in (32, 256):
                cluster = Cluster(num_nodes)
                table_r, table_s = make_tables(
                    cluster,
                    np.array(keys_r, dtype=np.int64),
                    np.array(keys_s, dtype=np.int64),
                    payload_bits_r=payload_bits,
                    payload_bits_s=payload_bits,
                    seed=seed,
                )
                totals.append(
                    algorithm_factory().run(cluster, table_r, table_s).network_bytes
                )
            assert totals[0] <= totals[1] + 1e-9


class TestLedgerConsistency:
    @settings(max_examples=10, deadline=None)
    @given(join_instance())
    def test_ledger_equals_profile_network_bytes(self, instance):
        """Two independent accountings of the same run must agree."""
        num_nodes, keys_r, keys_s, seed = instance
        cluster = Cluster(num_nodes)
        table_r, table_s = make_tables(
            cluster, np.array(keys_r, dtype=np.int64), np.array(keys_s, dtype=np.int64),
            seed=seed,
        )
        for algorithm in (GraceHashJoin(), TrackJoin4()):
            result = algorithm.run(cluster, table_r, table_s)
            assert result.profile.total_network_bytes() == pytest.approx(
                result.network_bytes
            )

    @settings(max_examples=10, deadline=None)
    @given(join_instance())
    def test_per_node_sums_match_total(self, instance):
        num_nodes, keys_r, keys_s, seed = instance
        cluster = Cluster(num_nodes)
        table_r, table_s = make_tables(
            cluster, np.array(keys_r, dtype=np.int64), np.array(keys_s, dtype=np.int64),
            seed=seed,
        )
        result = TrackJoin4().run(cluster, table_r, table_s)
        sent = sum(result.traffic.sent_by_node.values())
        received = sum(result.traffic.received_by_node.values())
        assert sent == pytest.approx(result.network_bytes)
        assert received == pytest.approx(result.network_bytes)
