"""Shared fixtures and helpers for the test suite.

The canonicalization helpers are the public ones from
:mod:`repro.testing`; downstream extensions get the same tools.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Cluster
from repro.analysis import sanitizer_disable, sanitizer_enable
from repro.testing import assert_same_output, canonical_output, scatter_tables

__all__ = ["assert_same_output", "canonical_output", "make_tables"]


@pytest.fixture(autouse=True, scope="session")
def _payload_sanitizer():
    """Run the whole tier-1 suite under the aliasing sanitizer.

    Every numpy array staged by a lane-bound send is read-only until the
    phase barrier commits, so a write-after-send aliasing bug anywhere
    in the suite raises at the offending store.  Opt out with
    ``REPRO_SANITIZE=0`` (e.g. to bisect whether a failure is the bug
    itself or the sanitizer surfacing it).
    """
    if os.environ.get("REPRO_SANITIZE", "1") == "0":
        yield
        return
    sanitizer_enable()
    try:
        yield
    finally:
        sanitizer_disable()


def make_tables(
    cluster: Cluster,
    keys_r: np.ndarray,
    keys_s: np.ndarray,
    payload_bits_r: int = 64,
    payload_bits_s: int = 128,
    seed: int = 0,
):
    """Scatter two key arrays uniformly onto a cluster with rid payloads."""
    return scatter_tables(
        cluster,
        keys_r,
        keys_s,
        payload_bits_r=payload_bits_r,
        payload_bits_s=payload_bits_s,
        seed=seed,
    )


@pytest.fixture
def small_cluster():
    """A 4-node cluster."""
    return Cluster(4)


@pytest.fixture
def small_tables(small_cluster):
    """Two modest random tables with repeated and partially-matching keys."""
    rng = np.random.default_rng(7)
    keys_r = rng.integers(0, 400, 1500)
    keys_s = rng.integers(200, 600, 2500)
    return make_tables(small_cluster, keys_r, keys_s)
