"""Edge-case coverage across subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Cluster,
    GraceHashJoin,
    JoinSpec,
    Schema,
    TrackJoin4,
    paper_cluster_2014,
)
from repro.errors import ReproError
from repro.query import AggregateSpec, run_aggregation
from repro.workloads import Workload, workload_y

from conftest import make_tables


class TestEmptyAndDegenerate:
    def test_aggregation_on_empty_table(self):
        cluster = Cluster(3)
        table = cluster.table_from_assignment(
            "T",
            Schema.with_widths(32, 64),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            columns={"v": np.array([], dtype=np.int64)},
        )
        result = run_aggregation(cluster, table, [AggregateSpec("n", "count", "v")], JoinSpec())
        assert result.table.total_rows == 0
        assert result.network_bytes == 0.0

    def test_join_one_empty_side(self, small_cluster):
        table_r, table_s = make_tables(
            small_cluster, np.array([], dtype=np.int64), np.arange(100)
        )
        for algorithm in (GraceHashJoin(), TrackJoin4()):
            assert algorithm.run(small_cluster, table_r, table_s).output_rows == 0

    def test_all_rows_one_node(self):
        """Degenerate placement: everything starts on node 0."""
        cluster = Cluster(4)
        keys = np.arange(500, dtype=np.int64)
        schema = Schema.with_widths(32, 64)
        zeros = np.zeros(500, dtype=np.int64)
        table_r = cluster.table_from_assignment("R", schema, keys, zeros)
        table_s = cluster.table_from_assignment("S", schema, keys, zeros)
        result = TrackJoin4().run(cluster, table_r, table_s)
        assert result.output_rows == 500
        # All matches are collocated: no payload crosses.
        from repro.cluster import MessageClass

        assert result.class_bytes(MessageClass.R_TUPLES) == 0.0
        assert result.class_bytes(MessageClass.S_TUPLES) == 0.0

    def test_single_hot_key_everywhere(self):
        """One key on every node of both tables: full cartesian output."""
        cluster = Cluster(4)
        schema = Schema.with_widths(32, 64)
        keys = np.zeros(8, dtype=np.int64)
        nodes = np.repeat(np.arange(4), 2).astype(np.int64)
        table_r = cluster.table_from_assignment("R", schema, keys, nodes)
        table_s = cluster.table_from_assignment("S", schema, keys, nodes)
        hashed = GraceHashJoin().run(cluster, table_r, table_s)
        tracked = TrackJoin4().run(cluster, table_r, table_s)
        assert hashed.output_rows == tracked.output_rows == 64


class TestWorkloadHelpers:
    def test_paper_gb_scaling(self):
        cluster = Cluster(2)
        table_r, table_s = make_tables(cluster, np.arange(10), np.arange(10))
        workload = Workload("w", cluster, table_r, table_s, scale=100.0)
        assert workload.paper_gb(1e7) == pytest.approx(1.0)
        assert workload.num_nodes == 2

    def test_y_implementation_widths(self):
        from repro.encoding import DictionaryEncoding

        wl = workload_y(scale_denominator=2048, implementation_widths=True, num_nodes=4)
        encoding = DictionaryEncoding()
        assert wl.table_r.schema.tuple_width(encoding) == pytest.approx(37)
        assert wl.table_s.schema.tuple_width(encoding) == pytest.approx(47)


class TestModelEdges:
    def test_hardware_model_zero_profile(self):
        from repro.timing import ExecutionProfile

        model = paper_cluster_2014(4)
        profile = ExecutionProfile(4)
        assert model.cpu_seconds(profile) == 0.0
        assert model.network_seconds(profile) == 0.0

    def test_unknown_plan_node(self):
        from repro.query import execute

        class Weird:
            pass

        with pytest.raises(ReproError):
            execute(Weird(), Cluster(2))

    def test_mapreduce_router_with_empty_outputs(self):
        from repro.mapreduce import Channel, MapReduceJob
        from repro.storage import LocalPartition

        cluster = Cluster(2)
        inputs = [LocalPartition.empty() for _ in range(2)]

        def router(node, outputs):
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

        job = MapReduceJob(
            channels=[Channel("x", inputs, lambda n, p: p, 4.0)],
            reducer=lambda n, g: LocalPartition.empty(),
            output_router=router,
            output_width=4.0,
        )
        result = job.run(cluster)
        assert all(part.num_rows == 0 for part in result.outputs)
