"""Tests for the fault injection and recovery subsystem (repro.faults).

Covers the headline invariant (every registry operator, under a seeded
mixed fault plan, produces output row-identical to the fault-free run
with a byte-identical goodput ledger), the null-plan fast path, budget
exhaustion (typed errors, never hangs), determinism across repeats and
worker counts, query-layer graceful degradation, and plan validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster
from repro.cluster.network import MessageClass
from repro.errors import FaultExhaustedError, ReproError, ValidationError
from repro.faults import CrashEvent, FaultPlan, FaultRates, StragglerEvent
from repro.faults.chaos import default_plan, run_chaos
from repro.joins.registry import create
from repro.query import Join, Scan, compile_plan
from repro.testing import canonical_output, scatter_tables


def _make_cluster(plan=None, num_nodes=4, workers=1):
    cluster = Cluster(num_nodes, workers=workers, fault_plan=plan)
    rng = np.random.default_rng(5)
    table_r, table_s = scatter_tables(
        cluster, rng.integers(0, 40, 120), rng.integers(0, 40, 180)
    )
    return cluster, table_r, table_s


def _goodput(ledger):
    return (
        float(ledger.total_bytes),
        float(ledger.local_bytes),
        int(ledger.message_count),
        sorted((k.value, v) for k, v in ledger.by_class.items() if v),
        sorted((link, v) for link, v in ledger.by_link.items() if v),
    )


def _canonical_table(table):
    """Sorted matrix of a query result table: key plus every column."""
    part = table.gathered()
    names = sorted(part.columns)
    matrix = np.stack([part.keys] + [part.columns[name] for name in names])
    return matrix[:, np.lexsort(matrix)]


# -- headline invariant --------------------------------------------------


class TestChaosMatrix:
    def test_every_operator_every_worker_count_recovers(self):
        """Drops+duplicates+reorders+delays+crash+straggler leave output
        and goodput identical to the fault-free run, for all operators."""
        report = run_chaos(seeds=(0, 1), worker_counts=(1, 4, 8))
        assert report["ok"], report["failures"]
        assert report["runs"] == 2 * 3 * len(report["algorithms"])
        # The plans actually did something: faults were injected and
        # the recovery overhead landed in the retransmit counters.
        assert report["faults"]["faults_injected"] > 0
        assert report["faults"]["crashes"] > 0
        assert report["faults"]["stragglers"] > 0
        assert report["retransmit_bytes"] > 0

    def test_default_plan_is_not_null(self):
        plan = default_plan(0, 4)
        assert not plan.is_null()
        assert plan.crash_count(0, 1) == 1


# -- null-plan fast path -------------------------------------------------


class TestNullPlan:
    def test_null_plan_installs_no_injector(self):
        cluster = Cluster(4, fault_plan=FaultPlan())
        assert FaultPlan().is_null()
        assert cluster.network.faults is None

    def test_null_plan_ledger_identical_to_no_plan(self):
        """A null plan is byte-for-byte the unfaulted fabric."""
        baseline_cluster, table_r, table_s = _make_cluster(plan=None)
        baseline = create("HJ").run(baseline_cluster, table_r, table_s)
        null_cluster, table_r, table_s = _make_cluster(plan=FaultPlan())
        nulled = create("HJ").run(null_cluster, table_r, table_s)
        assert _goodput(nulled.traffic) == _goodput(baseline.traffic)
        assert nulled.traffic.retransmit_bytes == 0.0
        assert np.array_equal(canonical_output(nulled), canonical_output(baseline))


# -- budget exhaustion ---------------------------------------------------


class TestExhaustion:
    def test_message_budget_exhaustion_raises_typed_error(self):
        """A link that drops everything fails fast with attribution."""
        plan = FaultPlan(seed=0, drop=1.0, max_retries=3)
        cluster, table_r, table_s = _make_cluster(plan)
        with pytest.raises(FaultExhaustedError) as excinfo:
            create("HJ").run(cluster, table_r, table_s)
        error = excinfo.value
        assert isinstance(error.category, MessageClass)
        assert isinstance(error.link, tuple) and len(error.link) == 2
        assert error.attempts == plan.max_retries + 1

    def test_crash_budget_exhaustion_raises_typed_error(self):
        """A node that refuses to stay up exhausts its restart budget."""
        plan = FaultPlan(
            seed=0,
            crashes=(CrashEvent(node=1, phase=1, count=99),),
            max_node_restarts=2,
        )
        cluster, table_r, table_s = _make_cluster(plan)
        with pytest.raises(FaultExhaustedError) as excinfo:
            create("HJ").run(cluster, table_r, table_s)
        assert excinfo.value.node == 1
        assert excinfo.value.attempts == plan.max_node_restarts + 1

    def test_non_tracking_exhaustion_propagates_through_query(self):
        """Poisoned tuple traffic cannot be degraded away — it raises."""
        plan = FaultPlan(seed=0, drop=1.0, max_retries=2)
        cluster, table_r, table_s = _make_cluster(plan)
        physical = compile_plan(Join(Scan(table_r), Scan(table_s), algorithm="HJ"))
        with pytest.raises(FaultExhaustedError):
            physical.run(cluster)

    def test_negative_operator_retries_rejected(self):
        cluster, table_r, table_s = _make_cluster()
        physical = compile_plan(Join(Scan(table_r), Scan(table_s), algorithm="HJ"))
        with pytest.raises(ReproError):
            physical.run(cluster, operator_retries=-1)


# -- determinism ---------------------------------------------------------


class TestDeterminism:
    def test_repeat_run_is_identical(self):
        """cluster.reset() rewinds the injector to the seeded sequence."""
        plan = default_plan(0, 4)
        cluster, table_r, table_s = _make_cluster(plan)
        first = create("4TJ").run(cluster, table_r, table_s)
        second = create("4TJ").run(cluster, table_r, table_s)
        assert np.array_equal(canonical_output(first), canonical_output(second))
        assert _goodput(first.traffic) == _goodput(second.traffic)
        assert first.traffic.retransmit_bytes == second.traffic.retransmit_bytes

    def test_fault_sequence_independent_of_worker_count(self):
        """Same plan, same workload: 1 and 4 workers inject identically."""
        plan = default_plan(1, 4)
        snapshots = []
        for workers in (1, 4):
            cluster, table_r, table_s = _make_cluster(plan, workers=workers)
            result = create("3TJ").run(cluster, table_r, table_s)
            snapshots.append(
                (
                    cluster.network.faults.stats.as_dict(),
                    _goodput(result.traffic),
                    canonical_output(result).tobytes(),
                )
            )
            cluster.executor.close()
        assert snapshots[0] == snapshots[1]

    def test_virtual_clock_advances_without_wall_time(self):
        """Backoff and stragglers are charged to the virtual clock."""
        plan = default_plan(0, 4)
        cluster, table_r, table_s = _make_cluster(plan)
        create("HJ").run(cluster, table_r, table_s)
        stats = cluster.network.faults.stats
        assert stats.virtual_time > 0.0
        assert stats.retries > 0


# -- retransmit accounting ----------------------------------------------


class TestRetransmitAccounting:
    def test_recovery_overhead_lands_in_retransmit_counters(self):
        plan = FaultPlan(seed=0, drop=0.2, duplicate=0.2, max_retries=16)
        cluster, table_r, table_s = _make_cluster(plan)
        faulty = create("HJ").run(cluster, table_r, table_s)
        clean_cluster, table_r, table_s = _make_cluster()
        clean = create("HJ").run(clean_cluster, table_r, table_s)
        assert faulty.traffic.retransmit_bytes > 0.0
        assert faulty.traffic.retransmit_count > 0
        assert clean.traffic.retransmit_bytes == 0.0
        # Goodput is unchanged: same message count, same per-class bytes.
        assert _goodput(faulty.traffic) == _goodput(clean.traffic)


# -- query-layer degradation ---------------------------------------------


class TestDegradation:
    def test_tracking_exhaustion_degrades_to_non_tracking_join(self):
        """3TJ with poisoned keys_counts traffic falls back gracefully."""
        plan = FaultPlan(
            seed=3,
            class_rates={MessageClass.KEYS_COUNTS: FaultRates(drop=1.0)},
            max_retries=2,
        )
        cluster, table_r, table_s = _make_cluster(plan)
        tree = Join(Scan(table_r), Scan(table_s), algorithm="3TJ")
        degraded = compile_plan(tree).run(cluster)
        clean_cluster, table_r, table_s = _make_cluster()
        clean = compile_plan(tree).run(clean_cluster)

        join_stats = [
            op for op in degraded.operators if op.operator.startswith("join[")
        ]
        assert len(join_stats) == 1
        assert "degraded 3TJ->" in join_stats[0].note
        assert "keys_counts traffic exhausted its fault budget" in join_stats[0].note
        assert np.array_equal(
            _canonical_table(degraded.table), _canonical_table(clean.table)
        )


# -- plan validation -----------------------------------------------------


class TestPlanValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop": 1.5},
            {"duplicate": -0.1},
            {"crash_rate": 2.0},
            {"max_retries": -1},
            {"max_node_restarts": -1},
            {"backoff_base": 0.0},
            {"backoff_cap": 0.5},  # cap below default base of 1.0
            {"class_rates": {"keys_counts": FaultRates()}},  # key not a MessageClass
            {"link_rates": {(0, 1): 0.5}},  # value not FaultRates
        ],
    )
    def test_bad_plan_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            FaultPlan(**kwargs)

    def test_bad_events_rejected(self):
        with pytest.raises(ValidationError):
            CrashEvent(node=-1, phase=1)
        with pytest.raises(ValidationError):
            CrashEvent(node=0, phase=0)
        with pytest.raises(ValidationError):
            CrashEvent(node=0, phase=1, count=0)
        with pytest.raises(ValidationError):
            StragglerEvent(node=0, phase=0)
        with pytest.raises(ValidationError):
            StragglerEvent(node=0, phase=1, delay=0.0)
        with pytest.raises(ValidationError):
            FaultRates(reorder=1.1)

    def test_scoped_rate_resolution(self):
        """Link overrides beat class overrides beat the base rates."""
        plan = FaultPlan(
            drop=0.1,
            class_rates={MessageClass.RIDS: FaultRates(drop=0.5)},
            link_rates={(0, 1): FaultRates(drop=0.9)},
        )
        assert plan.rates_for(MessageClass.RIDS, 0, 1).drop == 0.9
        assert plan.rates_for(MessageClass.RIDS, 1, 0).drop == 0.5
        assert plan.rates_for(MessageClass.R_TUPLES, 1, 0).drop == 0.1
