"""The operator registry: the one table every consumer reads.

Exactly one algorithm-name table exists (``repro.joins.registry``);
the query executor, the cost-model optimizer, and the experiment
tables all derive their views from it.  These tests pin the registry
contract — names, order, paper labels, cost coverage — and check each
consumer actually goes through it.
"""

from __future__ import annotations

import pytest

from repro.costmodel.optimizer import rank_algorithms
from repro.costmodel.stats import JoinStats
from repro.errors import ReproError, UnknownKeyError
from repro.joins import DistributedJoin
from repro.joins.registry import ALGORITHMS, algorithm, algorithm_names, create

#: Registry order is contractual: the optimizer's stable-sort tie-break
#: and the experiment tables' row order both derive from it.
EXPECTED_ORDER = (
    "BJ-R",
    "BJ-S",
    "HJ",
    "2TJ-R",
    "2TJ-S",
    "3TJ",
    "4TJ",
    "4TJ-bal",
    "4TJ-shard",
)


def _stats() -> JoinStats:
    return JoinStats(
        num_nodes=4,
        tuples_r=10_000,
        tuples_s=40_000,
        distinct_r=5_000,
        distinct_s=8_000,
        key_width=4.0,
        payload_r=8.0,
        payload_s=8.0,
        selectivity_r=0.5,
        selectivity_s=0.4,
    )


class TestRegistryContract:
    def test_names_and_order(self):
        assert algorithm_names() == EXPECTED_ORDER

    def test_factories_build_matching_fresh_operators(self):
        for info in ALGORITHMS:
            first, second = info.factory(), info.factory()
            assert isinstance(first, DistributedJoin)
            assert first.name == info.name
            assert first is not second  # no shared operator state

    def test_paper_labels_in_table_order(self):
        labels = [info.paper_label for info in ALGORITHMS if info.paper_label]
        assert labels == ["HJ", "2TJ", "3TJ", "4TJ"]

    def test_every_entry_has_a_description(self):
        assert all(info.description for info in ALGORITHMS)

    def test_lookup_unknown_name(self):
        with pytest.raises(UnknownKeyError, match="nope"):
            algorithm("nope")
        # The registry error stays catchable as the stdlib type too.
        with pytest.raises(KeyError):
            create("nope")

    def test_costs_are_finite_and_positive(self):
        stats = _stats()
        for info in ALGORITHMS:
            assert info.cost is not None  # every current entry is rankable
            assert info.cost(stats, None) > 0.0


class TestRegistryConsumers:
    def test_optimizer_ranks_the_whole_registry(self):
        ranking = rank_algorithms(_stats())
        assert sorted(e.algorithm for e in ranking) == sorted(EXPECTED_ORDER)
        costs = [e.cost_bytes for e in ranking]
        assert costs == sorted(costs)

    def test_executor_error_lists_registry_names(self):
        import numpy as np

        from repro import Cluster, Schema, random_uniform
        from repro.query import Join, Scan, execute

        cluster = Cluster(2)
        schema = Schema.with_widths(32, 64)
        keys = np.arange(10, dtype=np.int64)
        assignment = random_uniform(10, 2, seed=0)
        left = cluster.table_from_assignment("L", schema, keys, assignment)
        right = cluster.table_from_assignment("R", schema, keys, assignment)
        with pytest.raises(ReproError, match="2TJ-R"):
            execute(Join(Scan(left), Scan(right), algorithm="XJ"), cluster)

    def test_tables_measure_registry_paper_labels(self):
        from repro.experiments import tables

        # run_table2 measures exactly the paper-labeled registry entries.
        assert [
            info.paper_label for info in ALGORITHMS if info.paper_label is not None
        ] == ["HJ", "2TJ", "3TJ", "4TJ"]
        assert tables.ALGORITHMS is ALGORITHMS
