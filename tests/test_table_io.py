"""Tests for table persistence (save/load round-trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, GraceHashJoin, TrackJoin4
from repro.errors import SchemaError
from repro.storage.io import load_table, save_table
from repro.workloads import workload_y

from conftest import assert_same_output, make_tables


class TestRoundTrip:
    def test_schema_and_data_preserved(self, tmp_path, small_cluster, small_tables):
        table_r, _ = small_tables
        path = str(tmp_path / "r.npz")
        save_table(table_r, path)
        restored = load_table(path)
        assert restored.name == table_r.name
        assert restored.num_nodes == table_r.num_nodes
        assert restored.total_rows == table_r.total_rows
        assert restored.payload_names == table_r.payload_names
        for original, loaded in zip(table_r.partitions, restored.partitions):
            assert np.array_equal(original.keys, loaded.keys)
            for name in original.columns:
                assert np.array_equal(original.columns[name], loaded.columns[name])
        from repro.encoding import DictionaryEncoding

        encoding = DictionaryEncoding()
        assert restored.schema.tuple_width(encoding) == table_r.schema.tuple_width(
            encoding
        )

    def test_join_on_restored_tables(self, tmp_path, small_cluster, small_tables):
        table_r, table_s = small_tables
        save_table(table_r, str(tmp_path / "r.npz"))
        save_table(table_s, str(tmp_path / "s.npz"))
        restored_r = load_table(str(tmp_path / "r.npz"))
        restored_s = load_table(str(tmp_path / "s.npz"))
        original = TrackJoin4().run(small_cluster, table_r, table_s)
        restored = TrackJoin4().run(small_cluster, restored_r, restored_s)
        assert_same_output(original, restored)
        assert restored.network_bytes == pytest.approx(original.network_bytes)

    def test_workload_surrogate_roundtrip(self, tmp_path):
        """Rich schemas (char columns, decimal digits) survive."""
        wl = workload_y(scale_denominator=4096, num_nodes=4)
        path = str(tmp_path / "y.npz")
        save_table(wl.table_s, path)
        restored = load_table(path)
        from repro.encoding import VarByteEncoding

        assert restored.schema.tuple_width(VarByteEncoding()) == pytest.approx(47)

    def test_empty_table(self, tmp_path):
        cluster = Cluster(3)
        table_r, _ = make_tables(
            cluster, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        path = str(tmp_path / "empty.npz")
        save_table(table_r, path)
        assert load_table(path).total_rows == 0

    def test_not_a_table_file(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, x=np.arange(3))
        with pytest.raises(SchemaError):
            load_table(path)
